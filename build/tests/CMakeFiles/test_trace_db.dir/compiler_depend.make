# Empty compiler generated dependencies file for test_trace_db.
# This may be replaced when dependencies are built.
