# Empty compiler generated dependencies file for test_template_sweep.
# This may be replaced when dependencies are built.
