file(REMOVE_RECURSE
  "CMakeFiles/test_template_sweep.dir/test_template_sweep.cc.o"
  "CMakeFiles/test_template_sweep.dir/test_template_sweep.cc.o.d"
  "test_template_sweep"
  "test_template_sweep.pdb"
  "test_template_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_template_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
