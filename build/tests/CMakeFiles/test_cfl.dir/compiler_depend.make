# Empty compiler generated dependencies file for test_cfl.
# This may be replaced when dependencies are built.
