file(REMOVE_RECURSE
  "CMakeFiles/test_cfl.dir/test_cfl.cc.o"
  "CMakeFiles/test_cfl.dir/test_cfl.cc.o.d"
  "test_cfl"
  "test_cfl.pdb"
  "test_cfl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
