
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ocl/api_call.cc" "src/ocl/CMakeFiles/gt_ocl.dir/api_call.cc.o" "gcc" "src/ocl/CMakeFiles/gt_ocl.dir/api_call.cc.o.d"
  "/root/repo/src/ocl/driver.cc" "src/ocl/CMakeFiles/gt_ocl.dir/driver.cc.o" "gcc" "src/ocl/CMakeFiles/gt_ocl.dir/driver.cc.o.d"
  "/root/repo/src/ocl/runtime.cc" "src/ocl/CMakeFiles/gt_ocl.dir/runtime.cc.o" "gcc" "src/ocl/CMakeFiles/gt_ocl.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/gt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
