file(REMOVE_RECURSE
  "CMakeFiles/gt_ocl.dir/api_call.cc.o"
  "CMakeFiles/gt_ocl.dir/api_call.cc.o.d"
  "CMakeFiles/gt_ocl.dir/driver.cc.o"
  "CMakeFiles/gt_ocl.dir/driver.cc.o.d"
  "CMakeFiles/gt_ocl.dir/runtime.cc.o"
  "CMakeFiles/gt_ocl.dir/runtime.cc.o.d"
  "libgt_ocl.a"
  "libgt_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
