# Empty dependencies file for gt_ocl.
# This may be replaced when dependencies are built.
