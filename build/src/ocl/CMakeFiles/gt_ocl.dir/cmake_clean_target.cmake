file(REMOVE_RECURSE
  "libgt_ocl.a"
)
