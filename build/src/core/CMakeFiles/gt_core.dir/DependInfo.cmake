
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explorer.cc" "src/core/CMakeFiles/gt_core.dir/explorer.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/explorer.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/gt_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/features.cc.o.d"
  "/root/repo/src/core/interval.cc" "src/core/CMakeFiles/gt_core.dir/interval.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/interval.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/gt_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/gt_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/selection.cc.o.d"
  "/root/repo/src/core/selection_io.cc" "src/core/CMakeFiles/gt_core.dir/selection_io.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/selection_io.cc.o.d"
  "/root/repo/src/core/simpoint.cc" "src/core/CMakeFiles/gt_core.dir/simpoint.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/simpoint.cc.o.d"
  "/root/repo/src/core/trace_db.cc" "src/core/CMakeFiles/gt_core.dir/trace_db.cc.o" "gcc" "src/core/CMakeFiles/gt_core.dir/trace_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gtpin/CMakeFiles/gt_gtpin.dir/DependInfo.cmake"
  "/root/repo/build/src/cfl/CMakeFiles/gt_cfl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/gt_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
