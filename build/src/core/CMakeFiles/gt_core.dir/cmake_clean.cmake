file(REMOVE_RECURSE
  "CMakeFiles/gt_core.dir/explorer.cc.o"
  "CMakeFiles/gt_core.dir/explorer.cc.o.d"
  "CMakeFiles/gt_core.dir/features.cc.o"
  "CMakeFiles/gt_core.dir/features.cc.o.d"
  "CMakeFiles/gt_core.dir/interval.cc.o"
  "CMakeFiles/gt_core.dir/interval.cc.o.d"
  "CMakeFiles/gt_core.dir/pipeline.cc.o"
  "CMakeFiles/gt_core.dir/pipeline.cc.o.d"
  "CMakeFiles/gt_core.dir/selection.cc.o"
  "CMakeFiles/gt_core.dir/selection.cc.o.d"
  "CMakeFiles/gt_core.dir/selection_io.cc.o"
  "CMakeFiles/gt_core.dir/selection_io.cc.o.d"
  "CMakeFiles/gt_core.dir/simpoint.cc.o"
  "CMakeFiles/gt_core.dir/simpoint.cc.o.d"
  "CMakeFiles/gt_core.dir/trace_db.cc.o"
  "CMakeFiles/gt_core.dir/trace_db.cc.o.d"
  "libgt_core.a"
  "libgt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
