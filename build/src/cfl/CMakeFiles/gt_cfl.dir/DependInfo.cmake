
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfl/recorder.cc" "src/cfl/CMakeFiles/gt_cfl.dir/recorder.cc.o" "gcc" "src/cfl/CMakeFiles/gt_cfl.dir/recorder.cc.o.d"
  "/root/repo/src/cfl/serialize.cc" "src/cfl/CMakeFiles/gt_cfl.dir/serialize.cc.o" "gcc" "src/cfl/CMakeFiles/gt_cfl.dir/serialize.cc.o.d"
  "/root/repo/src/cfl/tracer.cc" "src/cfl/CMakeFiles/gt_cfl.dir/tracer.cc.o" "gcc" "src/cfl/CMakeFiles/gt_cfl.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/gt_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
