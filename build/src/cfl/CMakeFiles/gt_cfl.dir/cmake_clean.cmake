file(REMOVE_RECURSE
  "CMakeFiles/gt_cfl.dir/recorder.cc.o"
  "CMakeFiles/gt_cfl.dir/recorder.cc.o.d"
  "CMakeFiles/gt_cfl.dir/serialize.cc.o"
  "CMakeFiles/gt_cfl.dir/serialize.cc.o.d"
  "CMakeFiles/gt_cfl.dir/tracer.cc.o"
  "CMakeFiles/gt_cfl.dir/tracer.cc.o.d"
  "libgt_cfl.a"
  "libgt_cfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_cfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
