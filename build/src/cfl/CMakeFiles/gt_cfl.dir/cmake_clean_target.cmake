file(REMOVE_RECURSE
  "libgt_cfl.a"
)
