# Empty dependencies file for gt_cfl.
# This may be replaced when dependencies are built.
