# Empty dependencies file for gt_common.
# This may be replaced when dependencies are built.
