file(REMOVE_RECURSE
  "libgt_workloads.a"
)
