file(REMOVE_RECURSE
  "CMakeFiles/gt_workloads.dir/apps_compubench.cc.o"
  "CMakeFiles/gt_workloads.dir/apps_compubench.cc.o.d"
  "CMakeFiles/gt_workloads.dir/apps_sandra.cc.o"
  "CMakeFiles/gt_workloads.dir/apps_sandra.cc.o.d"
  "CMakeFiles/gt_workloads.dir/apps_sonyvegas.cc.o"
  "CMakeFiles/gt_workloads.dir/apps_sonyvegas.cc.o.d"
  "CMakeFiles/gt_workloads.dir/suite.cc.o"
  "CMakeFiles/gt_workloads.dir/suite.cc.o.d"
  "CMakeFiles/gt_workloads.dir/templates.cc.o"
  "CMakeFiles/gt_workloads.dir/templates.cc.o.d"
  "CMakeFiles/gt_workloads.dir/workload.cc.o"
  "CMakeFiles/gt_workloads.dir/workload.cc.o.d"
  "libgt_workloads.a"
  "libgt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
