
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps_compubench.cc" "src/workloads/CMakeFiles/gt_workloads.dir/apps_compubench.cc.o" "gcc" "src/workloads/CMakeFiles/gt_workloads.dir/apps_compubench.cc.o.d"
  "/root/repo/src/workloads/apps_sandra.cc" "src/workloads/CMakeFiles/gt_workloads.dir/apps_sandra.cc.o" "gcc" "src/workloads/CMakeFiles/gt_workloads.dir/apps_sandra.cc.o.d"
  "/root/repo/src/workloads/apps_sonyvegas.cc" "src/workloads/CMakeFiles/gt_workloads.dir/apps_sonyvegas.cc.o" "gcc" "src/workloads/CMakeFiles/gt_workloads.dir/apps_sonyvegas.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/gt_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/gt_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/templates.cc" "src/workloads/CMakeFiles/gt_workloads.dir/templates.cc.o" "gcc" "src/workloads/CMakeFiles/gt_workloads.dir/templates.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/gt_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/gt_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/gt_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gt_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
