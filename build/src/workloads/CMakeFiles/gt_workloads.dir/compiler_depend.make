# Empty compiler generated dependencies file for gt_workloads.
# This may be replaced when dependencies are built.
