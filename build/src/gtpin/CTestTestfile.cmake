# CMake generated Testfile for 
# Source directory: /root/repo/src/gtpin
# Build directory: /root/repo/build/src/gtpin
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
