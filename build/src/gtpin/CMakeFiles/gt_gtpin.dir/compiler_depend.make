# Empty compiler generated dependencies file for gt_gtpin.
# This may be replaced when dependencies are built.
