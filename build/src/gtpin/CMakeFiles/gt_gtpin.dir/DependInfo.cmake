
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtpin/cache_sim.cc" "src/gtpin/CMakeFiles/gt_gtpin.dir/cache_sim.cc.o" "gcc" "src/gtpin/CMakeFiles/gt_gtpin.dir/cache_sim.cc.o.d"
  "/root/repo/src/gtpin/gtpin.cc" "src/gtpin/CMakeFiles/gt_gtpin.dir/gtpin.cc.o" "gcc" "src/gtpin/CMakeFiles/gt_gtpin.dir/gtpin.cc.o.d"
  "/root/repo/src/gtpin/kernel_profile.cc" "src/gtpin/CMakeFiles/gt_gtpin.dir/kernel_profile.cc.o" "gcc" "src/gtpin/CMakeFiles/gt_gtpin.dir/kernel_profile.cc.o.d"
  "/root/repo/src/gtpin/rewriter.cc" "src/gtpin/CMakeFiles/gt_gtpin.dir/rewriter.cc.o" "gcc" "src/gtpin/CMakeFiles/gt_gtpin.dir/rewriter.cc.o.d"
  "/root/repo/src/gtpin/tools.cc" "src/gtpin/CMakeFiles/gt_gtpin.dir/tools.cc.o" "gcc" "src/gtpin/CMakeFiles/gt_gtpin.dir/tools.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ocl/CMakeFiles/gt_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
