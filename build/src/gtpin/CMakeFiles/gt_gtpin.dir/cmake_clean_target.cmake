file(REMOVE_RECURSE
  "libgt_gtpin.a"
)
