file(REMOVE_RECURSE
  "CMakeFiles/gt_gtpin.dir/cache_sim.cc.o"
  "CMakeFiles/gt_gtpin.dir/cache_sim.cc.o.d"
  "CMakeFiles/gt_gtpin.dir/gtpin.cc.o"
  "CMakeFiles/gt_gtpin.dir/gtpin.cc.o.d"
  "CMakeFiles/gt_gtpin.dir/kernel_profile.cc.o"
  "CMakeFiles/gt_gtpin.dir/kernel_profile.cc.o.d"
  "CMakeFiles/gt_gtpin.dir/rewriter.cc.o"
  "CMakeFiles/gt_gtpin.dir/rewriter.cc.o.d"
  "CMakeFiles/gt_gtpin.dir/tools.cc.o"
  "CMakeFiles/gt_gtpin.dir/tools.cc.o.d"
  "libgt_gtpin.a"
  "libgt_gtpin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_gtpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
