file(REMOVE_RECURSE
  "libgt_gpu.a"
)
