
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/detailed_sim.cc" "src/gpu/CMakeFiles/gt_gpu.dir/detailed_sim.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/detailed_sim.cc.o.d"
  "/root/repo/src/gpu/device_config.cc" "src/gpu/CMakeFiles/gt_gpu.dir/device_config.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/device_config.cc.o.d"
  "/root/repo/src/gpu/exec_profile.cc" "src/gpu/CMakeFiles/gt_gpu.dir/exec_profile.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/exec_profile.cc.o.d"
  "/root/repo/src/gpu/executor.cc" "src/gpu/CMakeFiles/gt_gpu.dir/executor.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/executor.cc.o.d"
  "/root/repo/src/gpu/luxmark.cc" "src/gpu/CMakeFiles/gt_gpu.dir/luxmark.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/luxmark.cc.o.d"
  "/root/repo/src/gpu/memory.cc" "src/gpu/CMakeFiles/gt_gpu.dir/memory.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/memory.cc.o.d"
  "/root/repo/src/gpu/timing.cc" "src/gpu/CMakeFiles/gt_gpu.dir/timing.cc.o" "gcc" "src/gpu/CMakeFiles/gt_gpu.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
