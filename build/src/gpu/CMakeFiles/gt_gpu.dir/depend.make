# Empty dependencies file for gt_gpu.
# This may be replaced when dependencies are built.
