file(REMOVE_RECURSE
  "CMakeFiles/gt_gpu.dir/detailed_sim.cc.o"
  "CMakeFiles/gt_gpu.dir/detailed_sim.cc.o.d"
  "CMakeFiles/gt_gpu.dir/device_config.cc.o"
  "CMakeFiles/gt_gpu.dir/device_config.cc.o.d"
  "CMakeFiles/gt_gpu.dir/exec_profile.cc.o"
  "CMakeFiles/gt_gpu.dir/exec_profile.cc.o.d"
  "CMakeFiles/gt_gpu.dir/executor.cc.o"
  "CMakeFiles/gt_gpu.dir/executor.cc.o.d"
  "CMakeFiles/gt_gpu.dir/luxmark.cc.o"
  "CMakeFiles/gt_gpu.dir/luxmark.cc.o.d"
  "CMakeFiles/gt_gpu.dir/memory.cc.o"
  "CMakeFiles/gt_gpu.dir/memory.cc.o.d"
  "CMakeFiles/gt_gpu.dir/timing.cc.o"
  "CMakeFiles/gt_gpu.dir/timing.cc.o.d"
  "libgt_gpu.a"
  "libgt_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
