file(REMOVE_RECURSE
  "CMakeFiles/gt_isa.dir/builder.cc.o"
  "CMakeFiles/gt_isa.dir/builder.cc.o.d"
  "CMakeFiles/gt_isa.dir/disasm.cc.o"
  "CMakeFiles/gt_isa.dir/disasm.cc.o.d"
  "CMakeFiles/gt_isa.dir/kernel.cc.o"
  "CMakeFiles/gt_isa.dir/kernel.cc.o.d"
  "CMakeFiles/gt_isa.dir/opcode.cc.o"
  "CMakeFiles/gt_isa.dir/opcode.cc.o.d"
  "CMakeFiles/gt_isa.dir/slice.cc.o"
  "CMakeFiles/gt_isa.dir/slice.cc.o.d"
  "libgt_isa.a"
  "libgt_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
