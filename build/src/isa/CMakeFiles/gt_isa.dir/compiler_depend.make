# Empty compiler generated dependencies file for gt_isa.
# This may be replaced when dependencies are built.
