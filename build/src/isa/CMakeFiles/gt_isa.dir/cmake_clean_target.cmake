file(REMOVE_RECURSE
  "libgt_isa.a"
)
