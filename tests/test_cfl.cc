/**
 * @file
 * CoFluent-analogue tests: API tracing (Fig. 3a inputs, per-kernel
 * timing for Eq. 1) and record/replay (the Section V-E mechanism
 * that makes selections findable across trials).
 */

#include <gtest/gtest.h>

#include "cfl/recorder.hh"
#include "cfl/tracer.hh"
#include "common/logging.hh"
#include "workloads/workload.hh"

namespace gt::cfl
{
namespace
{

gpu::TrialConfig
trial(uint64_t seed, double sigma = 0.01)
{
    gpu::TrialConfig t;
    t.noiseSeed = seed;
    t.noiseSigma = sigma;
    return t;
}

/** Run workload @p name, returning tracer+recorder results. */
void
runTraced(const std::string &name, const gpu::TrialConfig &t,
          ApiTracer &tracer, Recorder *recorder = nullptr)
{
    const workloads::Workload *w = workloads::findWorkload(name);
    ASSERT_NE(w, nullptr);
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, t);
    ocl::ClRuntime rt(driver);
    rt.addObserver(&tracer);
    if (recorder)
        rt.addObserver(recorder);
    w->run(rt);
}

TEST(Tracer, CountsAndCategorizes)
{
    ApiTracer tracer;
    runTraced("cb-throughput-juliaset", trial(1), tracer);

    EXPECT_GT(tracer.totalCalls(), 100u);
    uint64_t sum =
        tracer.categoryCalls(ocl::ApiCategory::Kernel) +
        tracer.categoryCalls(ocl::ApiCategory::Synchronization) +
        tracer.categoryCalls(ocl::ApiCategory::Other);
    EXPECT_EQ(sum, tracer.totalCalls());

    double fracs = tracer.categoryFraction(ocl::ApiCategory::Kernel) +
        tracer.categoryFraction(ocl::ApiCategory::Synchronization) +
        tracer.categoryFraction(ocl::ApiCategory::Other);
    EXPECT_NEAR(fracs, 1.0, 1e-12);

    // Juliaset is the paper's sync-heavy outlier.
    EXPECT_GT(
        tracer.categoryFraction(ocl::ApiCategory::Synchronization),
        0.15);
}

TEST(Tracer, KernelTimingsPerDispatch)
{
    ApiTracer tracer;
    runTraced("cb-gaussian-image", trial(2), tracer);

    EXPECT_EQ(tracer.kernelTimings().size(),
              tracer.categoryCalls(ocl::ApiCategory::Kernel));
    double sum = 0.0;
    uint64_t prev_seq = 0;
    bool first = true;
    for (const KernelTiming &kt : tracer.kernelTimings()) {
        EXPECT_GT(kt.seconds, 0.0);
        EXPECT_FALSE(kt.kernelName.empty());
        EXPECT_GT(kt.globalWorkSize, 0u);
        if (!first) {
            EXPECT_GT(kt.seq, prev_seq);
        }
        prev_seq = kt.seq;
        first = false;
        sum += kt.seconds;
    }
    EXPECT_NEAR(sum, tracer.totalKernelSeconds(), 1e-12);
}

TEST(Tracer, ResetClears)
{
    ApiTracer tracer;
    runTraced("cb-gaussian-image", trial(3), tracer);
    EXPECT_GT(tracer.totalCalls(), 0u);
    tracer.reset();
    EXPECT_EQ(tracer.totalCalls(), 0u);
    EXPECT_EQ(tracer.kernelTimings().size(), 0u);
    EXPECT_EQ(tracer.totalKernelSeconds(), 0.0);
}

TEST(Tracer, PerCallCountsSumToTotal)
{
    ApiTracer tracer;
    runTraced("cb-throughput-juliaset", trial(4), tracer);
    uint64_t sum = 0;
    for (uint64_t c : tracer.perCall())
        sum += c;
    EXPECT_EQ(sum, tracer.totalCalls());
}

TEST(RecordReplay, ReplayReproducesTheCallStream)
{
    ApiTracer tracer1;
    Recorder recorder;
    runTraced("cb-gaussian-image", trial(10), tracer1, &recorder);
    Recording rec = recorder.take();
    EXPECT_EQ(rec.size(), tracer1.totalCalls());
    EXPECT_EQ(rec.dispatchCount(),
              tracer1.categoryCalls(ocl::ApiCategory::Kernel));

    // Replay on a fresh runtime; the call stream must be identical.
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit,
                          trial(10));
    ocl::ClRuntime rt(driver);
    ApiTracer tracer2;
    rt.addObserver(&tracer2);
    replay(rec, rt);

    ASSERT_EQ(tracer2.totalCalls(), tracer1.totalCalls());
    for (size_t i = 0; i < tracer1.callStream().size(); ++i) {
        const auto &a = tracer1.callStream()[i];
        const auto &b = tracer2.callStream()[i];
        EXPECT_EQ(a.id, b.id) << "call " << i;
        EXPECT_EQ(a.kernelName, b.kernelName) << "call " << i;
        EXPECT_EQ(a.globalWorkSize, b.globalWorkSize);
        EXPECT_EQ(a.argsHash, b.argsHash) << "call " << i;
    }
}

TEST(RecordReplay, SameSeedReproducesTimings)
{
    ApiTracer tracer1;
    Recorder recorder;
    runTraced("cb-gaussian-image", trial(11), tracer1, &recorder);
    Recording rec = recorder.take();

    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit,
                          trial(11));
    ocl::ClRuntime rt(driver);
    ApiTracer tracer2;
    rt.addObserver(&tracer2);
    replay(rec, rt);

    ASSERT_EQ(tracer2.kernelTimings().size(),
              tracer1.kernelTimings().size());
    for (size_t i = 0; i < tracer1.kernelTimings().size(); ++i) {
        EXPECT_DOUBLE_EQ(tracer1.kernelTimings()[i].seconds,
                         tracer2.kernelTimings()[i].seconds);
    }
}

TEST(RecordReplay, DifferentSeedVariesTimingsOnly)
{
    ApiTracer tracer1;
    Recorder recorder;
    runTraced("cb-gaussian-image", trial(12), tracer1, &recorder);
    Recording rec = recorder.take();

    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit,
                          trial(13));
    ocl::ClRuntime rt(driver);
    ApiTracer tracer2;
    rt.addObserver(&tracer2);
    replay(rec, rt);

    ASSERT_EQ(tracer2.kernelTimings().size(),
              tracer1.kernelTimings().size());
    bool any_different = false;
    double total1 = 0.0, total2 = 0.0;
    for (size_t i = 0; i < tracer1.kernelTimings().size(); ++i) {
        double a = tracer1.kernelTimings()[i].seconds;
        double b = tracer2.kernelTimings()[i].seconds;
        any_different = any_different || a != b;
        total1 += a;
        total2 += b;
        // Same kernel identity regardless of noise.
        EXPECT_EQ(tracer1.kernelTimings()[i].kernelName,
                  tracer2.kernelTimings()[i].kernelName);
    }
    EXPECT_TRUE(any_different);
    // The totals agree closely: noise is zero-mean-ish and small.
    EXPECT_NEAR(total2 / total1, 1.0, 0.05);
}

TEST(RecordReplay, ReplayOnUsedRuntimePanics)
{
    setLogQuiet(true);
    Recorder recorder;
    ApiTracer tracer;
    runTraced("cb-gaussian-image", trial(14), tracer, &recorder);
    Recording rec = recorder.take();

    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
    ocl::ClRuntime rt(driver);
    rt.getPlatformIds(); // dirty the runtime
    EXPECT_THROW(replay(rec, rt), PanicError);
    setLogQuiet(false);
}

TEST(RecordReplay, EmptyRecordingIsNoop)
{
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
    ocl::ClRuntime rt(driver);
    Recording empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_NO_THROW(replay(empty, rt));
    EXPECT_EQ(rt.apiCallCount(), 0u);
}

TEST(RecordReplay, ReplayOnDifferentArchitecture)
{
    // The Fig. 8 cross-generation mechanism: record on Ivy Bridge,
    // replay on Haswell. Counts are identical; times differ. Use a
    // compute-bound application — extra EUs cannot speed up a
    // bandwidth-bound one.
    ApiTracer tracer1;
    Recorder recorder;
    runTraced("cb-throughput-juliaset", trial(15, 0.0), tracer1,
              &recorder);
    Recording rec = recorder.take();

    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4600(), jit,
                          trial(15, 0.0));
    ocl::ClRuntime rt(driver);
    ApiTracer tracer2;
    rt.addObserver(&tracer2);
    replay(rec, rt);

    ASSERT_EQ(tracer2.kernelTimings().size(),
              tracer1.kernelTimings().size());
    // Haswell (20 EUs, higher clock) is faster overall.
    EXPECT_LT(tracer2.totalKernelSeconds(),
              tracer1.totalKernelSeconds());
}

} // anonymous namespace
} // namespace gt::cfl
