/**
 * @file
 * Differential tests for the columnar feature engine: every flat
 * result — vectors, projections, clusterings, whole explorations —
 * must be bitwise identical to the std::map reference oracle, at
 * every thread count, on real profiled workloads and on adversarial
 * synthetic traces.
 */

#include <thread>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/explorer.hh"
#include "core/feature_engine.hh"
#include "core/pipeline.hh"
#include "workloads/workload.hh"

namespace gt::core
{
namespace
{

std::vector<FeatureKind>
allKinds()
{
    std::vector<FeatureKind> kinds;
    for (int k = 0; k < numFeatureKinds; ++k)
        kinds.push_back((FeatureKind)k);
    return kinds;
}

std::vector<IntervalScheme>
allSchemes()
{
    return {IntervalScheme::SyncBounded,
            IntervalScheme::ApproxInstructions,
            IntervalScheme::SingleKernel};
}

ProfiledApp
profiled(const char *name)
{
    const workloads::Workload *w = workloads::findWorkload(name);
    GT_ASSERT(w, "unknown workload ", name);
    return profileApp(*w);
}

void
expectBitwiseEqual(const FeatureVector &a, const FeatureVector &b)
{
    ASSERT_EQ(a.keys(), b.keys());
    ASSERT_EQ(a.values().size(), b.values().size());
    for (size_t i = 0; i < a.values().size(); ++i)
        ASSERT_EQ(a.values()[i], b.values()[i]) << "dim " << i;
}

// --- Flat vs map oracle on real profiled workloads ----------------

class EngineWorkloadTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineWorkloadTest, FlatVectorsMatchMapOracleBitwise)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    FeatureEngine flat(app.db, FeatureBackend::Flat);
    for (IntervalScheme scheme : allSchemes()) {
        auto intervals = buildIntervals(app.db, scheme);
        for (FeatureKind kind : allKinds()) {
            for (const Interval &iv : intervals) {
                FeatureVector got = flat.extract(iv, kind);
                FeatureVector want =
                    extractFeaturesMap(app.db, iv, kind);
                expectBitwiseEqual(got, want);
            }
        }
    }
    setLogQuiet(false);
}

TEST_P(EngineWorkloadTest, ProjectionsMatchOnTheFlyBitwise)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    FeatureEngine flat(app.db, FeatureBackend::Flat);
    ASSERT_NE(flat.projection(), nullptr);
    for (IntervalScheme scheme : allSchemes()) {
        auto intervals = buildIntervals(app.db, scheme);
        for (FeatureKind kind : allKinds()) {
            auto vectors = flat.extractAll(intervals, kind);
            for (const FeatureVector &vec : vectors) {
                simpoint::Point memo =
                    simpoint::project(vec, flat.projection());
                simpoint::Point fly = simpoint::project(vec);
                for (int d = 0; d < simpoint::projectedDims; ++d)
                    ASSERT_EQ(memo[d], fly[d]) << "dim " << d;
            }
        }
    }
    setLogQuiet(false);
}

TEST_P(EngineWorkloadTest, ExplorationMatchesMapBackendBitwise)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    FeatureEngine flat(app.db, FeatureBackend::Flat);
    FeatureEngine map(app.db, FeatureBackend::Map);

    Exploration a = exploreConfigs(app.db, {}, 0, &flat);
    Exploration b = exploreConfigs(app.db, {}, 0, &map);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        const ConfigResult &ra = a.results[i];
        const ConfigResult &rb = b.results[i];
        EXPECT_EQ(ra.selection.scheme, rb.selection.scheme);
        EXPECT_EQ(ra.selection.feature, rb.selection.feature);
        EXPECT_EQ(ra.selection.selected, rb.selection.selected);
        EXPECT_EQ(ra.selection.ratios, rb.selection.ratios); // bitwise
        EXPECT_EQ(ra.selection.selectedInstrs,
                  rb.selection.selectedInstrs);
        EXPECT_EQ(ra.errorPct, rb.errorPct); // bitwise
    }
    setLogQuiet(false);
}

TEST_P(EngineWorkloadTest, FlatExplorationIsThreadCountInvariant)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    FeatureEngine flat(app.db, FeatureBackend::Flat);

    auto explore_with = [&](unsigned threads) {
        sched::ThreadPool pool(threads);
        simpoint::ClusterOptions options;
        options.pool = &pool;
        return exploreConfigs(app.db, options, 0, &flat);
    };

    Exploration serial = explore_with(1);
    for (unsigned threads :
         {4u, std::max(1u, std::thread::hardware_concurrency())}) {
        Exploration par = explore_with(threads);
        ASSERT_EQ(serial.results.size(), par.results.size());
        for (size_t i = 0; i < serial.results.size(); ++i) {
            EXPECT_EQ(serial.results[i].selection.selected,
                      par.results[i].selection.selected);
            EXPECT_EQ(serial.results[i].selection.ratios,
                      par.results[i].selection.ratios);
            EXPECT_EQ(serial.results[i].errorPct,
                      par.results[i].errorPct);
        }
    }
    setLogQuiet(false);
}

TEST_P(EngineWorkloadTest, RangeSumsMatchDispatchLoops)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    const TraceDatabase &db = app.db;
    for (IntervalScheme scheme : allSchemes()) {
        for (const Interval &iv : buildIntervals(db, scheme)) {
            uint64_t instrs = 0;
            double seconds = 0.0;
            for (uint64_t i = iv.firstDispatch;
                 i <= iv.lastDispatch; ++i) {
                instrs += db.profileAt(i).instrs;
                seconds += db.seconds(i);
            }
            EXPECT_EQ(db.rangeInstrs(iv.firstDispatch,
                                     iv.lastDispatch),
                      instrs);
            // Same left-to-right accumulation: bitwise equal.
            EXPECT_EQ(db.rangeSeconds(iv.firstDispatch,
                                      iv.lastDispatch),
                      seconds);
            EXPECT_EQ(iv.instrs, instrs);
            EXPECT_EQ(iv.seconds, seconds);
        }
    }
    setLogQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(
    TwoWorkloads, EngineWorkloadTest,
    ::testing::Values("cb-histogram-buffer", "cb-gaussian-image"),
    [](const auto &info) {
        std::string out;
        for (char c : std::string(info.param)) {
            out += std::isalnum((unsigned char)c) ? c : '_';
        }
        return out;
    });

// --- Replayed trials --------------------------------------------

TEST(FeatureEngine, ReplayedTrialNeedsItsOwnEngine)
{
    setLogQuiet(true);
    ProfiledApp app = profiled("cb-histogram-buffer");
    gpu::TrialConfig trial2;
    trial2.noiseSeed = 99;
    TraceDatabase db2 = replayTrial(app.recording,
                                    gpu::DeviceConfig::hd4000(),
                                    trial2);

    // An engine is bound to the database it lowered; handing it a
    // selection pass over another trial's database must trip the
    // identity assert rather than silently serve stale columns.
    FeatureEngine engine1(app.db, FeatureBackend::Flat);
    EXPECT_THROW(selectSubset(db2, IntervalScheme::SyncBounded,
                              FeatureKind::BB, {}, 0, &engine1),
                 PanicError);

    // A fresh engine over the replayed trial matches that trial's
    // oracle (not trial 1's).
    FeatureEngine engine2(db2, FeatureBackend::Flat);
    for (const Interval &iv :
         buildIntervals(db2, IntervalScheme::SingleKernel)) {
        expectBitwiseEqual(
            engine2.extract(iv, FeatureKind::BB_R_W),
            extractFeaturesMap(db2, iv, FeatureKind::BB_R_W));
    }
    setLogQuiet(false);
}

// --- Synthetic edge cases ----------------------------------------

/** One all-zero dispatch between two normal ones, plus a dispatch
 * with zero-count blocks only. */
TraceDatabase
edgeDb()
{
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    std::vector<ocl::ApiCallRecord> stream;
    uint64_t idx = 0;
    for (uint64_t i = 0; i < 4; ++i) {
        gtpin::DispatchProfile p;
        p.seq = i;
        p.kernelId = (uint32_t)i;
        p.kernelName = "edge";
        p.globalWorkSize = 64;
        p.argsHash = 7;
        switch (i) {
          case 0: // normal
            p.blockCounts = {3, 1};
            p.blockLens = {10, 2};
            p.blockReadBytes = {8, 0};
            p.blockWriteBytes = {0, 4};
            break;
          case 1: // zero instructions, zero blocks executed
            p.blockCounts = {0, 0};
            p.blockLens = {10, 2};
            p.blockReadBytes = {8, 0};
            p.blockWriteBytes = {0, 4};
            break;
          case 2: // kernel with no basic-block data at all
            break;
          default: // normal again
            p.blockCounts = {5};
            p.blockLens = {4};
            p.blockReadBytes = {0};
            p.blockWriteBytes = {16};
            break;
        }
        for (size_t b = 0; b < p.blockCounts.size(); ++b) {
            p.instrs += p.blockCounts[b] * p.blockLens[b];
            p.bytesRead += p.blockCounts[b] * p.blockReadBytes[b];
            p.bytesWritten +=
                p.blockCounts[b] * p.blockWriteBytes[b];
        }
        profiles.push_back(p);

        cfl::KernelTiming t;
        t.seq = i;
        t.seconds = 1e-6 * (double)(i + 1);
        timings.push_back(t);

        ocl::ApiCallRecord rec;
        rec.callIndex = idx++;
        rec.id = ocl::ApiCallId::EnqueueNDRangeKernel;
        rec.dispatchSeq = i;
        stream.push_back(rec);
    }
    return TraceDatabase::build(std::move(profiles), timings,
                                stream);
}

TEST(FeatureEngine, EmptyDispatchesYieldEmptyVectorsOnBothBackends)
{
    TraceDatabase db = edgeDb();
    FeatureEngine flat(db, FeatureBackend::Flat);
    for (uint64_t d : {1ull, 2ull}) {
        Interval iv;
        iv.firstDispatch = d;
        iv.lastDispatch = d;
        for (FeatureKind kind : allKinds()) {
            FeatureVector got = flat.extract(iv, kind);
            FeatureVector want = extractFeaturesMap(db, iv, kind);
            EXPECT_EQ(got.dims(), 0u)
                << featureKindName(kind) << " dispatch " << d;
            expectBitwiseEqual(got, want);
        }
    }
}

TEST(FeatureEngine, SingleDispatchIntervalsMatchOracle)
{
    TraceDatabase db = edgeDb();
    FeatureEngine flat(db, FeatureBackend::Flat);
    for (uint64_t d = 0; d < db.numDispatches(); ++d) {
        Interval iv;
        iv.firstDispatch = d;
        iv.lastDispatch = d;
        for (FeatureKind kind : allKinds()) {
            expectBitwiseEqual(flat.extract(iv, kind),
                               extractFeaturesMap(db, iv, kind));
        }
    }
}

TEST(FeatureEngine, ScratchReuseAcrossKindsAndIntervalsIsClean)
{
    TraceDatabase db = edgeDb();
    DispatchFeatureCache cache(db);
    DispatchFeatureCache::Scratch scratch;
    // Interleave kinds and intervals through ONE scratch and check
    // nothing leaks between extractions.
    for (int round = 0; round < 3; ++round) {
        for (FeatureKind kind : allKinds()) {
            for (uint64_t d = 0; d < db.numDispatches(); ++d) {
                Interval iv;
                iv.firstDispatch = 0;
                iv.lastDispatch = d;
                expectBitwiseEqual(
                    cache.extract(iv, kind, scratch),
                    extractFeaturesMap(db, iv, kind));
            }
        }
    }
}

TEST(FeatureEngine, AllZeroVectorsNormalizeToEmpty)
{
    TraceDatabase db = edgeDb();
    FeatureEngine flat(db, FeatureBackend::Flat);
    FeatureEngine map(db, FeatureBackend::Map);
    Interval iv;
    iv.firstDispatch = 1;
    iv.lastDispatch = 2; // only instruction-free dispatches
    for (FeatureKind kind : allKinds()) {
        auto flat_all = flat.extractAll({iv}, kind);
        auto map_all = map.extractAll({iv}, kind);
        ASSERT_EQ(flat_all.size(), 1u);
        ASSERT_EQ(map_all.size(), 1u);
        EXPECT_EQ(flat_all[0].dims(), 0u);
        expectBitwiseEqual(flat_all[0], map_all[0]);
    }
}

TEST(FeatureEngine, MapBackendHasNoCacheOrTable)
{
    TraceDatabase db = edgeDb();
    FeatureEngine map(db, FeatureBackend::Map);
    EXPECT_EQ(map.backend(), FeatureBackend::Map);
    EXPECT_EQ(map.projection(), nullptr);
    FeatureEngine flat(db, FeatureBackend::Flat);
    EXPECT_EQ(flat.backend(), FeatureBackend::Flat);
    EXPECT_NE(flat.projection(), nullptr);
}

TEST(FeatureEngine, CacheKeyUniverseCoversEveryExtractedKey)
{
    TraceDatabase db = edgeDb();
    DispatchFeatureCache cache(db);
    const auto &keys = cache.uniqueKeys();
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    DispatchFeatureCache::Scratch scratch;
    Interval whole;
    whole.firstDispatch = 0;
    whole.lastDispatch = db.numDispatches() - 1;
    for (FeatureKind kind : allKinds()) {
        FeatureVector vec = cache.extract(whole, kind, scratch);
        for (uint64_t key : vec.keys()) {
            EXPECT_TRUE(std::binary_search(keys.begin(), keys.end(),
                                           key));
        }
    }
}

// --- ProjectionTable and FeatureVector units ---------------------

TEST(ProjectionTable, RowsMatchOnTheFlyCoefficients)
{
    std::vector<uint64_t> keys = {2, 17, 0x9000000000000001ull};
    auto table = simpoint::ProjectionTable::build(keys);
    EXPECT_EQ(table.size(), keys.size());
    for (uint64_t key : keys) {
        ASSERT_NE(table.row(key), nullptr);
        FeatureVector unit;
        unit.add(key, 1.0);
        simpoint::Point via_table = simpoint::project(unit, &table);
        simpoint::Point via_hash = simpoint::project(unit);
        for (int d = 0; d < simpoint::projectedDims; ++d)
            EXPECT_EQ(via_table[d], via_hash[d]);
    }
    EXPECT_EQ(table.row(3), nullptr);
    EXPECT_EQ(table.row(0xffffffffffffffffull), nullptr);
}

TEST(ProjectionTable, MissingKeyTripsAssert)
{
    setLogQuiet(true);
    auto table = simpoint::ProjectionTable::build({10, 20});
    FeatureVector vec;
    vec.add(15, 1.0);
    EXPECT_THROW(simpoint::project(vec, &table), PanicError);
    setLogQuiet(false);
}

TEST(FeatureVector, FromSortedRejectsBadColumns)
{
    setLogQuiet(true);
    EXPECT_THROW(FeatureVector::fromSorted({1, 2}, {1.0}),
                 PanicError);
    EXPECT_THROW(FeatureVector::fromSorted({2, 1}, {1.0, 2.0}),
                 PanicError);
    EXPECT_THROW(FeatureVector::fromSorted({1, 1}, {1.0, 2.0}),
                 PanicError);
    setLogQuiet(false);
    FeatureVector ok = FeatureVector::fromSorted({1, 5}, {2.0, 3.0});
    EXPECT_EQ(ok.dims(), 2u);
    EXPECT_DOUBLE_EQ(ok.sum(), 5.0);
}

TEST(FeatureVector, AddMatchesFromSortedAndComparesEqual)
{
    FeatureVector a;
    a.add(30, 1.0);
    a.add(10, 2.0);
    a.add(20, 3.0);
    a.add(10, 0.5); // accumulate out of order
    FeatureVector b =
        FeatureVector::fromSorted({10, 20, 30}, {2.5, 3.0, 1.0});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.keys(), (std::vector<uint64_t>{10, 20, 30}));
}

} // anonymous namespace
} // namespace gt::core
