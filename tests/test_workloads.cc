/**
 * @file
 * Workload-suite tests: every kernel template instantiates to a
 * verified binary, and all 25 applications run end-to-end with
 * paper-shaped characteristics (parameterized across the suite).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "core/pipeline.hh"
#include "isa/disasm.hh"
#include "workloads/workload.hh"

namespace gt::workloads
{
namespace
{

// --- templates ----------------------------------------------------------

class TemplateTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TemplateTest, InstantiatesVerifiedBinary)
{
    const KernelTemplateRegistry &reg = builtinTemplates();
    isa::KernelBinary bin =
        reg.instantiate(GetParam(), "t_" + GetParam(), {});
    EXPECT_EQ(bin.name, "t_" + GetParam());
    EXPECT_GT(bin.staticInstrCount(), 0u);
    EXPECT_NO_THROW(isa::verify(bin));
    // Disassembly must render every instruction.
    std::ostringstream os;
    EXPECT_NO_THROW(isa::disassemble(bin, os));
    EXPECT_GT(os.str().size(), 10u);
}

TEST_P(TemplateTest, ParamsChangeTheBinary)
{
    const KernelTemplateRegistry &reg = builtinTemplates();
    // Doubling the leading parameter (a trip/round/stage count in
    // every template) must change the code or its loop bounds.
    isa::KernelBinary a =
        reg.instantiate(GetParam(), "a", {8});
    isa::KernelBinary b =
        reg.instantiate(GetParam(), "b", {16});
    bool differs =
        a.staticInstrCount() != b.staticInstrCount();
    if (!differs) {
        // Same shape: at least one immediate differs (trip count).
        std::ostringstream osa, osb;
        isa::disassemble(a, osa);
        isa::disassemble(b, osb);
        std::string sa = osa.str(), sb = osb.str();
        differs = sa.substr(sa.find('\n')) != sb.substr(sb.find('\n'));
    }
    EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, TemplateTest,
    ::testing::ValuesIn(builtinTemplates().templateNames()),
    [](const auto &info) { return info.param; });

TEST(TemplateRegistry, UnknownTemplateFatal)
{
    setLogQuiet(true);
    EXPECT_THROW(
        builtinTemplates().instantiate("no-such", "x", {}),
        FatalError);
    setLogQuiet(false);
}

TEST(TemplateRegistry, UserExtensionPoint)
{
    KernelTemplateRegistry reg;
    reg.add("custom", [](const std::string &name,
                         const std::vector<int64_t> &) {
        isa::KernelBuilder b(name, 0);
        b.halt();
        return b.finish();
    });
    EXPECT_TRUE(reg.has("custom"));
    isa::KernelBinary bin = reg.instantiate("custom", "c", {});
    EXPECT_EQ(bin.staticInstrCount(), 1u);
}

TEST(TemplateJitTest, DerivesNameWhenAbsent)
{
    TemplateJit jit;
    isa::KernelSource src;
    src.templateName = "julia";
    src.params = {32, 8};
    isa::KernelBinary bin = jit.compile(src);
    EXPECT_EQ(bin.name, "julia_32_8");
}

// --- suite-wide application properties -----------------------------------

/** Profiles are expensive; compute one per app lazily and cache. */
const core::ProfiledApp &
profiled(const std::string &name)
{
    static std::map<std::string, core::ProfiledApp> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const Workload *w = findWorkload(name);
        GT_ASSERT(w, "unknown workload ", name);
        it = cache.emplace(name, core::profileApp(*w)).first;
    }
    return it->second;
}

class SuiteTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteTest, RunsAndHasPaperShapedCharacteristics)
{
    const core::ProfiledApp &app = profiled(GetParam());
    const core::AppCharacterization &st = app.stats;

    // Fig. 3a ranges: hundreds to ~160K API calls; the three
    // categories partition the stream.
    EXPECT_GE(st.totalApiCalls, 100u);
    EXPECT_LE(st.totalApiCalls, 200'000u);
    EXPECT_NEAR(st.fracKernel + st.fracSync + st.fracOther, 1.0,
                1e-9);
    EXPECT_GT(st.fracKernel, 0.0);
    EXPECT_GT(st.fracSync, 0.0);

    // Fig. 3b: 1..50 unique kernels; >= 6 unique basic blocks.
    EXPECT_GE(st.uniqueKernels, 1u);
    EXPECT_LE(st.uniqueKernels, 50u);
    EXPECT_GE(st.uniqueBlocks, 6u);
    EXPECT_LE(st.uniqueBlocks, 12'000u);

    // Fig. 3c: dynamic work present and self-consistent.
    EXPECT_GE(st.kernelInvocations, 50u);
    EXPECT_GT(st.blockExecs, st.kernelInvocations);
    EXPECT_GT(st.dynInstrs, st.blockExecs);
    EXPECT_EQ(st.dynInstrs, app.db.totalInstrs());
    EXPECT_EQ(st.kernelInvocations, app.db.numDispatches());

    // Fig. 4a: instruction classes sum to the dynamic total; no
    // instrumentation leaks into application mixes.
    uint64_t class_sum = 0;
    for (int c = 0; c < isa::numOpClasses; ++c)
        class_sum += st.classCounts[c];
    EXPECT_EQ(class_sum, st.dynInstrs);
    EXPECT_EQ(
        st.classCounts[(int)isa::OpClass::Instrumentation], 0u);
    EXPECT_GT(st.classCounts[(int)isa::OpClass::Computation], 0u);
    EXPECT_GT(st.classCounts[(int)isa::OpClass::Control], 0u);

    // Fig. 4b: SIMD widths sum correctly; SIMD-2 is never used
    // (paper: "2-wide instructions are never used").
    uint64_t simd_sum = 0;
    for (int b = 0; b < 5; ++b)
        simd_sum += st.simdCounts[b];
    EXPECT_EQ(simd_sum, st.dynInstrs);
    EXPECT_EQ(st.simdCounts[1], 0u);
    EXPECT_GT(st.simdCounts[3] + st.simdCounts[4], st.dynInstrs / 2);

    // Fig. 4c: every app moves memory.
    EXPECT_GT(st.bytesRead + st.bytesWritten, 0u);

    // Timing exists for every dispatch.
    EXPECT_GT(app.db.totalSeconds(), 0.0);
    EXPECT_GT(app.db.numSyncEpochs(), 1u);

    // The recording is complete enough to replay.
    EXPECT_EQ(app.recording.dispatchCount(), st.kernelInvocations);
}

INSTANTIATE_TEST_SUITE_P(
    All25Apps, SuiteTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const Workload *w : workloadSuite())
            names.push_back(w->info().name);
        return names;
    }()),
    [](const auto &info) {
        std::string s = info.param;
        for (char &c : s) {
            if (c == '-')
                c = '_';
        }
        return s;
    });

TEST(Suite, HasExactly25Applications)
{
    EXPECT_EQ(workloadSuite().size(), 25u);
    std::set<std::string> names;
    for (const Workload *w : workloadSuite())
        names.insert(w->info().name);
    EXPECT_EQ(names.size(), 25u);
}

TEST(Suite, SourcesMatchTableOne)
{
    int compubench = 0, sandra = 0, sony = 0;
    for (const Workload *w : workloadSuite()) {
        const std::string &suite = w->info().suite;
        if (suite.find("CompuBench") != std::string::npos)
            ++compubench;
        else if (suite.find("Sandra") != std::string::npos)
            ++sandra;
        else if (suite.find("Sony") != std::string::npos)
            ++sony;
    }
    EXPECT_EQ(compubench, 15);
    EXPECT_EQ(sandra, 3);
    EXPECT_EQ(sony, 7);
}

TEST(Suite, FindWorkloadByName)
{
    EXPECT_NE(findWorkload("cb-throughput-bitcoin"), nullptr);
    EXPECT_EQ(findWorkload("not-an-app"), nullptr);
}

TEST(Suite, PaperOutliersReproduced)
{
    // Bitcoin's kernel-call share is tiny (paper: 4.5%).
    const auto &btc = profiled("cb-throughput-bitcoin").stats;
    EXPECT_LT(btc.fracKernel, 0.10);

    // Part-sim-32K is kernel-call dominated (paper: 76.5%).
    const auto &ps = profiled("cb-physics-part-sim-32k").stats;
    EXPECT_GT(ps.fracKernel, 0.60);

    // Juliaset is the sync-share outlier (paper: 25.7%) and has the
    // fewest API calls (paper: 703).
    const auto &julia = profiled("cb-throughput-juliaset").stats;
    EXPECT_GT(julia.fracSync, 0.15);
    EXPECT_LT(julia.totalApiCalls, 1000u);

    // Proc-GPU is computation-dominated (paper: 91%).
    const auto &proc = profiled("sandra-proc-gpu").stats;
    double comp =
        (double)proc.classCounts[(int)isa::OpClass::Computation] /
        (double)proc.dynInstrs;
    EXPECT_GT(comp, 0.70);

    // Sony region 5 is the extreme writer (paper: writes 525x reads).
    const auto &r5 = profiled("sonyvegas-proj-r5").stats;
    EXPECT_GT(r5.bytesWritten, r5.bytesRead * 10);

    // The crypto benchmarks read the most.
    const auto &aes = profiled("sandra-crypt-aes256").stats;
    EXPECT_GT(aes.bytesRead, aes.bytesWritten * 10);
}

} // anonymous namespace
} // namespace gt::workloads
