/**
 * @file
 * Feature-extraction tests (Table III): the ten feature kinds, the
 * instruction-count weighting, normalization, and the refinement
 * relationships between kinds — parameterized across all ten.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/pipeline.hh"

namespace gt::core
{
namespace
{

/** Two-kernel synthetic trace whose dispatches vary args and gws. */
TraceDatabase
featureDb()
{
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    std::vector<ocl::ApiCallRecord> stream;
    uint64_t idx = 0;
    for (uint64_t i = 0; i < 24; ++i) {
        gtpin::DispatchProfile p;
        p.seq = i;
        p.kernelId = (uint32_t)(i % 2);
        p.kernelName = p.kernelId ? "beta" : "alpha";
        p.globalWorkSize = 256 << (i % 3);
        p.argsHash = 0x1000 + i % 4;
        p.blockCounts = {10 + i, 5, i % 2 ? 7u : 0u};
        p.blockLens = {4, 10, 6};
        p.blockReadBytes = {16, 0, 64};
        p.blockWriteBytes = {0, 32, 0};
        p.instrs = 0;
        p.bytesRead = 0;
        p.bytesWritten = 0;
        for (size_t b = 0; b < 3; ++b) {
            p.instrs += p.blockCounts[b] * p.blockLens[b];
            p.bytesRead += p.blockCounts[b] * p.blockReadBytes[b];
            p.bytesWritten +=
                p.blockCounts[b] * p.blockWriteBytes[b];
        }
        profiles.push_back(p);

        cfl::KernelTiming t;
        t.seq = i;
        t.seconds = 1e-5;
        timings.push_back(t);

        ocl::ApiCallRecord rec;
        rec.callIndex = idx++;
        rec.id = ocl::ApiCallId::EnqueueNDRangeKernel;
        rec.dispatchSeq = i;
        stream.push_back(rec);
        if (i % 6 == 5) {
            ocl::ApiCallRecord sync;
            sync.callIndex = idx++;
            sync.id = ocl::ApiCallId::Finish;
            stream.push_back(sync);
        }
    }
    return TraceDatabase::build(std::move(profiles), timings,
                                stream);
}

std::vector<FeatureKind>
allKinds()
{
    std::vector<FeatureKind> kinds;
    for (int k = 0; k < numFeatureKinds; ++k)
        kinds.push_back((FeatureKind)k);
    return kinds;
}

class FeatureKindTest
    : public ::testing::TestWithParam<FeatureKind>
{
};

TEST_P(FeatureKindTest, ExtractsNonEmptyNormalizedVectors)
{
    TraceDatabase db = featureDb();
    auto intervals =
        buildIntervals(db, IntervalScheme::SyncBounded);
    auto vectors = extractAllFeatures(db, intervals, GetParam());
    ASSERT_EQ(vectors.size(), intervals.size());
    for (const FeatureVector &vec : vectors) {
        EXPECT_GT(vec.dims(), 0u);
        EXPECT_NEAR(vec.sum(), 1.0, 1e-9);
        for (double v : vec.values())
            EXPECT_GE(v, 0.0);
    }
}

TEST_P(FeatureKindTest, IdenticalIntervalsProduceIdenticalVectors)
{
    TraceDatabase db = featureDb();
    // Intervals 0 and 2 hold dispatches with the same composition
    // modulo our construction (period 6 with period-2/3/4 fields is
    // not exactly repeating, so compare an interval with itself).
    auto intervals =
        buildIntervals(db, IntervalScheme::SyncBounded);
    FeatureVector a = extractFeatures(db, intervals[0], GetParam());
    FeatureVector b = extractFeatures(db, intervals[0], GetParam());
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllTenKinds, FeatureKindTest, ::testing::ValuesIn(allKinds()),
    [](const auto &info) {
        std::string s = featureKindName(info.param);
        std::string out;
        for (char c : s) {
            if (std::isalnum((unsigned char)c))
                out += c;
            else
                out += '_';
        }
        return out;
    });

TEST(Features, KindPredicatesMatchTableIII)
{
    EXPECT_FALSE(isBlockFeature(FeatureKind::KN));
    EXPECT_FALSE(isBlockFeature(FeatureKind::KN_RW));
    EXPECT_TRUE(isBlockFeature(FeatureKind::BB));
    EXPECT_TRUE(isBlockFeature(FeatureKind::BB_RpW));
    EXPECT_FALSE(hasMemoryFeature(FeatureKind::KN));
    EXPECT_FALSE(hasMemoryFeature(FeatureKind::BB));
    EXPECT_TRUE(hasMemoryFeature(FeatureKind::KN_RW));
    EXPECT_TRUE(hasMemoryFeature(FeatureKind::BB_R));
    EXPECT_STREQ(featureKindName(FeatureKind::BB_RpW), "BB-(R+W)");
    EXPECT_STREQ(featureKindName(FeatureKind::KN_ARGS_GWS),
                 "KN-ARGS-GWS");
}

TEST(Features, KnDimensionalityReflectsKeyRefinement)
{
    TraceDatabase db = featureDb();
    Interval whole;
    whole.firstDispatch = 0;
    whole.lastDispatch = db.numDispatches() - 1;

    size_t kn =
        extractFeatures(db, whole, FeatureKind::KN).dims();
    size_t kn_args =
        extractFeatures(db, whole, FeatureKind::KN_ARGS).dims();
    size_t kn_gws =
        extractFeatures(db, whole, FeatureKind::KN_GWS).dims();
    size_t kn_args_gws =
        extractFeatures(db, whole, FeatureKind::KN_ARGS_GWS).dims();
    size_t kn_rw =
        extractFeatures(db, whole, FeatureKind::KN_RW).dims();

    // 2 kernels; refinements split keys further.
    EXPECT_EQ(kn, 2u);
    EXPECT_GT(kn_args, kn);
    EXPECT_GT(kn_gws, kn);
    EXPECT_GE(kn_args_gws, kn_args);
    EXPECT_GE(kn_args_gws, kn_gws);
    // KN-RW adds a read and a write dimension per kernel.
    EXPECT_EQ(kn_rw, kn + 4u);
}

TEST(Features, BbDimensionalityReflectsMemoryDims)
{
    TraceDatabase db = featureDb();
    Interval whole;
    whole.firstDispatch = 0;
    whole.lastDispatch = db.numDispatches() - 1;

    size_t bb = extractFeatures(db, whole, FeatureKind::BB).dims();
    size_t bb_r =
        extractFeatures(db, whole, FeatureKind::BB_R).dims();
    size_t bb_w =
        extractFeatures(db, whole, FeatureKind::BB_W).dims();
    size_t bb_rw =
        extractFeatures(db, whole, FeatureKind::BB_R_W).dims();
    size_t bb_rpw =
        extractFeatures(db, whole, FeatureKind::BB_RpW).dims();

    // 2 kernels x 3 blocks, all executed somewhere.
    EXPECT_EQ(bb, 5u);
    EXPECT_GT(bb_r, bb);
    EXPECT_GT(bb_w, bb);
    EXPECT_GE(bb_rw, bb_r);
    EXPECT_GE(bb_rw, bb_w);
    EXPECT_GT(bb_rpw, bb);
    EXPECT_LE(bb_rpw, bb_rw);
}

TEST(Features, WeightingByInstructionCount)
{
    // Section V-B's example: block A 10 times x 3 instrs vs block B
    // 5 times x 20 instrs — B must carry the larger weight.
    std::vector<gtpin::DispatchProfile> profiles;
    gtpin::DispatchProfile p;
    p.seq = 0;
    p.kernelId = 0;
    p.blockCounts = {10, 5};
    p.blockLens = {3, 20};
    p.blockReadBytes = {0, 0};
    p.blockWriteBytes = {0, 0};
    p.instrs = 10 * 3 + 5 * 20;
    profiles.push_back(p);
    std::vector<cfl::KernelTiming> timings(1);
    timings[0].seq = 0;
    timings[0].seconds = 1e-5;
    std::vector<ocl::ApiCallRecord> stream(1);
    stream[0].id = ocl::ApiCallId::EnqueueNDRangeKernel;
    stream[0].dispatchSeq = 0;
    TraceDatabase db =
        TraceDatabase::build(std::move(profiles), timings, stream);

    Interval whole;
    whole.firstDispatch = 0;
    whole.lastDispatch = 0;
    FeatureVector vec =
        extractFeatures(db, whole, FeatureKind::BB);
    ASSERT_EQ(vec.dims(), 2u);
    std::vector<double> values = vec.values();
    double lo = std::min(values[0], values[1]);
    double hi = std::max(values[0], values[1]);
    EXPECT_DOUBLE_EQ(lo, 30.0);  // A: 10 x 3
    EXPECT_DOUBLE_EQ(hi, 100.0); // B: 5 x 20
}

TEST(Features, VectorOps)
{
    FeatureVector a, b;
    a.add(1, 3.0);
    a.add(2, 4.0);
    b.add(2, 2.0);
    b.add(3, 9.0);
    EXPECT_DOUBLE_EQ(a.l2norm(), 5.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 8.0);
    EXPECT_DOUBLE_EQ(a.sum(), 7.0);
    a.normalize();
    EXPECT_NEAR(a.sum(), 1.0, 1e-12);
    // Zero entries are dropped.
    FeatureVector z;
    z.add(5, 0.0);
    EXPECT_EQ(z.dims(), 0u);
    z.normalize(); // no-op, no crash
}

TEST(Features, UnexecutedBlocksProduceNoDims)
{
    TraceDatabase db = featureDb();
    // Even-seq dispatches have blockCounts[2] == 0: a single-kernel
    // interval over dispatch 0 must not have a dim for block 2.
    auto intervals =
        buildIntervals(db, IntervalScheme::SingleKernel);
    FeatureVector vec =
        extractFeatures(db, intervals[0], FeatureKind::BB);
    EXPECT_EQ(vec.dims(), 2u);
}

} // anonymous namespace
} // namespace gt::core
