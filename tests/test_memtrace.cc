/**
 * @file
 * Batched SoA memory-trace pipeline tests: the MemTraceSink's
 * chunking contract, CacheModel's bulk consumer against the
 * per-access oracle, and end-to-end GT-Pin batch-vs-callback
 * differentials — the batch backend must be bitwise identical to the
 * retained callback oracle at every thread count.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "gpu/executor.hh"
#include "gpu/memtrace.hh"
#include "gtpin/cache_sim.hh"
#include "gtpin/tools.hh"
#include "isa/builder.hh"
#include "ocl/runtime.hh"
#include "sched/thread_pool.hh"
#include "workloads/templates.hh"

namespace gt::gtpin
{
namespace
{

using gpu::MemBatch;
using gpu::MemTraceSink;
using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Reg;
using isa::imm;

/** One unpacked trace record, for readable comparisons. */
struct Rec
{
    uint64_t addr;
    uint32_t bytes;
    bool write;
    bool operator==(const Rec &) const = default;
};

/** Append a batch's records to @p out, one Rec per entry. */
void
unpack(const MemBatch &batch, std::vector<Rec> &out)
{
    for (size_t i = 0; i < batch.count; ++i) {
        uint32_t meta = batch.metas[i];
        out.push_back({batch.addrs[i], MemBatch::bytes(meta),
                       MemBatch::isWrite(meta)});
    }
}

// --- MemTraceSink chunking contract ------------------------------------

TEST(MemTraceSink, FlushesFullChunksInOrder)
{
    std::vector<size_t> sizes;
    std::vector<Rec> recs;
    gpu::MemBatchFn fn = [&](const MemBatch &b) {
        sizes.push_back(b.count);
        unpack(b, recs);
    };

    MemTraceSink sink;
    sink.begin(&fn, 4);
    for (uint32_t i = 0; i < 10; ++i)
        sink.append(0x1000 + i * 64, 4 + i, i % 2 == 1);
    sink.finish();

    EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2}));
    ASSERT_EQ(recs.size(), 10u);
    for (uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(recs[i], (Rec{0x1000 + i * 64, 4 + i, i % 2 == 1}))
            << "record " << i;
    }
}

TEST(MemTraceSink, ExactlyFullBufferFlushesOnce)
{
    size_t batches = 0, records = 0;
    gpu::MemBatchFn fn = [&](const MemBatch &b) {
        ++batches;
        records += b.count;
    };
    MemTraceSink sink;
    sink.begin(&fn, 4);
    for (uint32_t i = 0; i < 4; ++i)
        sink.append(i, 4, false);
    // The chunk flushed the moment it filled; finish() must not
    // deliver a second, empty batch.
    EXPECT_EQ(batches, 1u);
    sink.finish();
    EXPECT_EQ(batches, 1u);
    EXPECT_EQ(records, 4u);
}

TEST(MemTraceSink, EmptyTraceDeliversNothing)
{
    size_t batches = 0;
    gpu::MemBatchFn fn = [&](const MemBatch &) { ++batches; };
    MemTraceSink sink;
    sink.begin(&fn, 4);
    sink.finish();
    EXPECT_EQ(batches, 0u);
}

TEST(MemTraceSink, MetaPackingRoundTrips)
{
    // The write flag lives in the top meta bit; byte counts up to
    // bytesMask survive unchanged.
    std::vector<Rec> recs;
    gpu::MemBatchFn fn = [&](const MemBatch &b) { unpack(b, recs); };
    MemTraceSink sink;
    sink.begin(&fn, 8);
    sink.append(~0ull, MemBatch::bytesMask, true);
    sink.append(0, 1, false);
    sink.finish();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0], (Rec{~0ull, MemBatch::bytesMask, true}));
    EXPECT_EQ(recs[1], (Rec{0, 1, false}));
}

// --- CacheModel bulk consumer vs. per-access oracle --------------------

TEST(CacheModelBatch, MatchesPerAccessOracle)
{
    // Pseudo-random trace with deliberate same-line runs and
    // line-straddling accesses; both consumers must agree on every
    // counter and on subsequent behaviour (same final cache state).
    CacheModel oracle(16 * 1024, 4, 64);
    CacheModel batched(16 * 1024, 4, 64);

    std::vector<uint64_t> addrs;
    std::vector<uint32_t> metas;
    uint64_t lcg = 12345;
    for (int i = 0; i < 20000; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t addr = (lcg >> 16) % (256 * 1024);
        uint32_t bytes = 1u << ((lcg >> 8) % 6); // 1..32 bytes
        bool write = (lcg & 1) != 0;
        // Every fourth record repeats the previous address to build
        // same-line runs, the accessBatch fast path.
        if (i % 4 == 3 && !addrs.empty()) {
            addr = addrs.back();
            bytes = 4;
        }
        addrs.push_back(addr);
        metas.push_back(bytes | (write ? MemBatch::writeBit : 0));
    }

    for (size_t i = 0; i < addrs.size(); ++i) {
        oracle.access(addrs[i], MemBatch::bytes(metas[i]),
                      MemBatch::isWrite(metas[i]));
    }
    // Feed the batch consumer in uneven chunks to cross run
    // boundaries mid-batch.
    size_t chunk_sizes[] = {1, 7, 100, 4096, 128};
    size_t pos = 0, c = 0;
    while (pos < addrs.size()) {
        size_t n = std::min(chunk_sizes[c++ % 5], addrs.size() - pos);
        batched.accessBatch({addrs.data() + pos, metas.data() + pos, n});
        pos += n;
    }

    EXPECT_EQ(batched.hits(), oracle.hits());
    EXPECT_EQ(batched.misses(), oracle.misses());
    EXPECT_EQ(batched.writebacks(), oracle.writebacks());

    // Final cache state must match too: replay a probe sweep and
    // compare the resulting counters.
    for (uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
        oracle.access(addr, 4, false);
        uint64_t a[] = {addr};
        uint32_t m[] = {4};
        batched.accessBatch({a, m, 1});
    }
    EXPECT_EQ(batched.hits(), oracle.hits());
    EXPECT_EQ(batched.misses(), oracle.misses());
    EXPECT_EQ(batched.writebacks(), oracle.writebacks());
}

// --- executor-level delivery -------------------------------------------

class MemTraceExecTest : public ::testing::Test
{
  protected:
    MemTraceExecTest()
        : config(gpu::DeviceConfig::hd4000()), memory(16 << 20),
          exec(config, memory)
    {}

    /** 16 lanes each storing 4 bytes to arg0 + 4*gid. */
    static KernelBinary
    storeKernel()
    {
        KernelBuilder b("st16", 1);
        Reg a = b.reg();
        b.shl(a, b.globalIds(), imm(2), 16);
        b.add(a, a, b.arg(0), 16);
        b.store(b.globalIds(), a, 4, 16);
        b.halt();
        return b.finish();
    }

    gpu::ExecProfile
    runBatched(const KernelBinary &bin, uint64_t gws, size_t chunk,
               std::vector<size_t> &sizes, std::vector<Rec> &recs)
    {
        gpu::Dispatch d;
        d.binary = &bin;
        d.globalSize = gws;
        d.simdWidth = 16;
        d.args = {(uint32_t)base};
        exec.setMemTraceChunk(chunk);
        return exec.run(d, gpu::Executor::Mode::Full, nullptr, {},
                        [&](const MemBatch &b) {
                            sizes.push_back(b.count);
                            unpack(b, recs);
                        });
    }

    gpu::DeviceConfig config;
    gpu::DeviceMemory memory;
    gpu::Executor exec;
    uint64_t base = 0x1000;
};

TEST_F(MemTraceExecTest, ExactlyFullDispatchFlushesOnce)
{
    KernelBinary bin = storeKernel();
    std::vector<size_t> sizes;
    std::vector<Rec> recs;
    runBatched(bin, 16, 16, sizes, recs); // 16 records, chunk 16
    EXPECT_EQ(sizes, (std::vector<size_t>{16}));
    ASSERT_EQ(recs.size(), 16u);
    for (uint32_t lane = 0; lane < 16; ++lane)
        EXPECT_EQ(recs[lane], (Rec{base + lane * 4, 4, true}));
}

TEST_F(MemTraceExecTest, MultiFlushDispatchPreservesOrder)
{
    KernelBinary bin = storeKernel();
    std::vector<size_t> sizes;
    std::vector<Rec> recs;
    runBatched(bin, 64, 5, sizes, recs); // 64 records, chunks of 5
    ASSERT_EQ(sizes.size(), 13u);        // 12 full + final 4
    for (size_t i = 0; i < 12; ++i)
        EXPECT_EQ(sizes[i], 5u);
    EXPECT_EQ(sizes[12], 4u);
    ASSERT_EQ(recs.size(), 64u);
    for (uint32_t gid = 0; gid < 64; ++gid)
        EXPECT_EQ(recs[gid], (Rec{base + gid * 4, 4, true}));
}

TEST_F(MemTraceExecTest, DispatchWithoutSendsDeliversNothing)
{
    KernelBuilder b("nosend", 0);
    Reg r = b.reg();
    b.add(r, b.globalIds(), imm(1), 16);
    b.halt();
    KernelBinary bin = b.finish();

    std::vector<size_t> sizes;
    std::vector<Rec> recs;
    gpu::Dispatch d;
    d.binary = &bin;
    d.globalSize = 32;
    d.simdWidth = 16;
    exec.setMemTraceChunk(8);
    exec.run(d, gpu::Executor::Mode::Full, nullptr, {},
             [&](const MemBatch &bch) {
                 sizes.push_back(bch.count);
                 unpack(bch, recs);
             });
    EXPECT_TRUE(sizes.empty());
    EXPECT_TRUE(recs.empty());
}

TEST_F(MemTraceExecTest, LocalSendsExcludedIdenticallyToOracle)
{
    // One local store, one local load, one global store per lane:
    // only the global send may appear in the trace, in both modes.
    KernelBuilder b("slm", 1);
    Reg a = b.reg(), v = b.reg(), g = b.reg();
    b.shl(a, b.globalIds(), imm(2), 16);
    b.store(b.globalIds(), a, 4, 16, 0, isa::AddrSpace::Local);
    b.load(v, a, 4, 16, 0, isa::AddrSpace::Local);
    b.shl(g, b.globalIds(), imm(2), 16);
    b.add(g, g, b.arg(0), 16);
    b.store(v, g, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    std::vector<size_t> sizes;
    std::vector<Rec> batch_recs;
    runBatched(bin, 16, 8, sizes, batch_recs);

    std::vector<Rec> oracle_recs;
    gpu::Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 16;
    d.args = {(uint32_t)base};
    exec.run(d, gpu::Executor::Mode::Full, nullptr,
             [&](uint64_t addr, uint32_t bytes, bool is_write) {
                 oracle_recs.push_back({addr, bytes, is_write});
             });

    ASSERT_EQ(batch_recs.size(), 16u); // global stores only
    for (uint32_t lane = 0; lane < 16; ++lane)
        EXPECT_EQ(batch_recs[lane], (Rec{base + lane * 4, 4, true}));
    EXPECT_EQ(batch_recs, oracle_recs);
}

TEST_F(MemTraceExecTest, BothBackendsEmitIdenticalTraces)
{
    // The Switch and Uops interpreters share the sink plumbing; both
    // must produce the same ordered trace as the callback oracle.
    KernelBinary bin = storeKernel();
    for (auto backend : {gpu::Executor::Backend::Switch,
                         gpu::Executor::Backend::Uops}) {
        exec.setBackend(backend);
        std::vector<size_t> sizes;
        std::vector<Rec> batch_recs, oracle_recs;
        runBatched(bin, 48, 7, sizes, batch_recs);

        gpu::Dispatch d;
        d.binary = &bin;
        d.globalSize = 48;
        d.simdWidth = 16;
        d.args = {(uint32_t)base};
        exec.run(d, gpu::Executor::Mode::Full, nullptr,
                 [&](uint64_t addr, uint32_t bytes, bool is_write) {
                     oracle_recs.push_back({addr, bytes, is_write});
                 });
        EXPECT_EQ(batch_recs, oracle_recs)
            << gpu::Executor::backendName(backend);
    }
}

// --- end-to-end GT-Pin differential ------------------------------------

/** Counters one profiled stack produces; must be mode-invariant. */
struct StackResult
{
    uint64_t hits, misses, writebacks;
    uint64_t bytesRead, bytesWritten, dynInstrs;
    bool operator==(const StackResult &) const = default;
};

/**
 * Build a private driver + GT-Pin stack in @p mode, dispatch template
 * @p tname twice (256 then 512 items), and collect every counter.
 */
StackResult
runStack(const std::string &tname, GtPin::MemTraceMode mode)
{
    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);

    CacheSimTool cache(64 * 1024, 16, 64);
    MemBytesTool mem;
    BasicBlockCounterTool bb;
    GtPin pin;
    pin.setMemTraceMode(mode);
    pin.addTool(&cache);
    pin.addTool(&mem);
    pin.addTool(&bb);
    pin.attach(driver);

    ocl::ClRuntime rt(driver);
    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    isa::KernelSource src;
    src.name = tname + "_mt";
    src.templateName = tname;
    ocl::Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    ocl::Kernel k = rt.createKernel(prog, src.name);
    ocl::Mem buf = rt.createBuffer(ctx, 1 << 20);
    const KernelBinary &bin = driver.binary(0);
    for (uint32_t a = 0; a < bin.numArgs; ++a)
        rt.setKernelArg(k, a, buf);
    rt.enqueueNDRangeKernel(q, k, 256);
    rt.enqueueNDRangeKernel(q, k, 512);
    rt.finish(q);
    pin.detach();

    return {cache.cache().hits(), cache.cache().misses(),
            cache.cache().writebacks(), mem.totalBytesRead(),
            mem.totalBytesWritten(), bb.totalDynInstrs()};
}

TEST(GtPinMemTrace, BatchBitwiseIdenticalToCallbackOracle)
{
    for (const char *tname : {"stream", "blur", "hash", "histogram"}) {
        StackResult callback =
            runStack(tname, GtPin::MemTraceMode::Callback);
        StackResult batch = runStack(tname, GtPin::MemTraceMode::Batch);
        EXPECT_EQ(batch, callback) << tname;
        EXPECT_GT(batch.hits + batch.misses, 0u) << tname;
    }
}

TEST(GtPinMemTrace, ParallelStacksMatchSerialBitwise)
{
    // Private stacks share no mutable state, so N concurrent batched
    // profiles must be bitwise identical to serial ones (the 1-vs-N
    // determinism the pipeline layer relies on).
    const std::vector<std::string> tnames = {"stream", "blur", "hash",
                                             "julia", "effect",
                                             "blend"};
    std::vector<StackResult> serial(tnames.size());
    for (size_t i = 0; i < tnames.size(); ++i)
        serial[i] = runStack(tnames[i], GtPin::MemTraceMode::Batch);

    std::vector<StackResult> parallel(tnames.size());
    sched::ThreadPool pool(4);
    pool.parallelFor(
        tnames.size(),
        [&](size_t i) {
            parallel[i] = runStack(tnames[i], GtPin::MemTraceMode::Batch);
        },
        1);

    for (size_t i = 0; i < tnames.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]) << tnames[i];
}

TEST(GtPinMemTrace, ProfilesIdenticalAcrossModes)
{
    // The DispatchResult profile (executor ground truth) must not
    // depend on the trace delivery mode either.
    auto profile_of = [](GtPin::MemTraceMode mode) {
        workloads::TemplateJit jit;
        gpu::TrialConfig trial;
        trial.noiseSigma = 0.0;
        ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);
        CacheSimTool cache;
        GtPin pin;
        pin.setMemTraceMode(mode);
        pin.addTool(&cache);
        pin.attach(driver);

        ocl::ClRuntime rt(driver);
        ocl::Context ctx = rt.createContext();
        ocl::CommandQueue q = rt.createCommandQueue(ctx);
        isa::KernelSource src;
        src.name = "prof";
        src.templateName = "nbody";
        ocl::Program prog = rt.createProgramWithSource(ctx, {src});
        rt.buildProgram(prog);
        ocl::Kernel k = rt.createKernel(prog, "prof");
        ocl::Mem buf = rt.createBuffer(ctx, 1 << 20);
        const KernelBinary &bin = driver.binary(0);
        for (uint32_t a = 0; a < bin.numArgs; ++a)
            rt.setKernelArg(k, a, buf);

        ocl::DispatchResult last;
        class Grab : public ocl::ApiObserver
        {
          public:
            explicit Grab(ocl::DispatchResult &out) : out(out) {}
            void
            onDispatchExecuted(const ocl::DispatchResult &r) override
            {
                out = r;
            }
            ocl::DispatchResult &out;
        } grab(last);
        rt.addObserver(&grab);
        rt.enqueueNDRangeKernel(q, k, 256);
        rt.finish(q);
        rt.removeObserver(&grab);
        pin.detach();
        return last;
    };

    ocl::DispatchResult callback =
        profile_of(GtPin::MemTraceMode::Callback);
    ocl::DispatchResult batch = profile_of(GtPin::MemTraceMode::Batch);
    EXPECT_EQ(batch.profile.dynInstrs, callback.profile.dynInstrs);
    EXPECT_EQ(batch.profile.bytesRead, callback.profile.bytesRead);
    EXPECT_EQ(batch.profile.bytesWritten,
              callback.profile.bytesWritten);
    EXPECT_EQ(batch.profile.blockCounts, callback.profile.blockCounts);
    EXPECT_EQ(batch.profile.threadCycles, callback.profile.threadCycles);
}

} // anonymous namespace
} // namespace gt::gtpin
