/**
 * @file
 * Functional-executor tests: instruction semantics in Full mode,
 * Fast/Full profile equivalence (the core soundness property of the
 * fast profiling path), homogeneous-thread scaling, heterogeneous
 * thread execution, memory behaviour, and guard rails.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/logging.hh"
#include "gpu/executor.hh"
#include "isa/builder.hh"
#include "workloads/templates.hh"

namespace gt::gpu
{
namespace
{

using isa::CmpOp;
using isa::Flag;
using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Reg;
using isa::fimm;
using isa::imm;

class ExecutorTest : public ::testing::Test
{
  protected:
    ExecutorTest()
        : config(DeviceConfig::hd4000()), memory(16 << 20),
          exec(config, memory)
    {}

    /** Run one 16-item dispatch in Full mode. */
    ExecProfile
    runFull(const KernelBinary &bin, std::vector<uint32_t> args,
            uint64_t gws = 16)
    {
        Dispatch d;
        d.binary = &bin;
        d.globalSize = gws;
        d.simdWidth = 16;
        d.args = std::move(args);
        return exec.run(d, Executor::Mode::Full);
    }

    DeviceConfig config;
    DeviceMemory memory;
    Executor exec;
};

// --- arithmetic and logic semantics -----------------------------------

TEST_F(ExecutorTest, StoreWritesPerLaneValues)
{
    uint64_t base = memory.allocate(256);
    KernelBuilder b("store", 1);
    Reg a = b.reg();
    b.shl(a, b.globalIds(), imm(2), 16);
    b.add(a, a, b.arg(0), 16);
    Reg v = b.reg();
    b.mul(v, b.globalIds(), imm(3), 16);
    b.store(v, a, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    runFull(bin, {(uint32_t)base});
    for (uint32_t lane = 0; lane < 16; ++lane)
        EXPECT_EQ(memory.read32(base + lane * 4), lane * 3);
}

TEST_F(ExecutorTest, LoadReadsMemory)
{
    uint64_t src = memory.allocate(256);
    uint64_t dst = memory.allocate(256);
    for (uint32_t i = 0; i < 16; ++i)
        memory.write32(src + i * 4, 100 + i);

    KernelBuilder b("load", 2);
    Reg a = b.reg(), o = b.reg(), v = b.reg();
    b.shl(a, b.globalIds(), imm(2), 16);
    b.add(o, a, b.arg(1), 16);
    b.add(a, a, b.arg(0), 16);
    b.load(v, a, 4, 16);
    b.add(v, v, imm(1), 16);
    b.store(v, o, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    runFull(bin, {(uint32_t)src, (uint32_t)dst});
    for (uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(memory.read32(dst + i * 4), 101 + i);
}

TEST_F(ExecutorTest, IntegerOpsSemantics)
{
    uint64_t out = memory.allocate(1024);
    KernelBuilder b("intops", 1);
    Reg a = b.reg(), r = b.reg(), addr = b.reg();
    b.mov(a, imm(0xf0f0), 16);

    auto emit_store = [&](int slot) {
        b.shl(addr, b.globalIds(), imm(2), 16);
        b.add(addr, addr, b.arg(0), 16);
        b.store(r, addr, 4, 16, slot * 64);
    };

    b.and_(r, a, imm(0xff00), 16);
    emit_store(0);
    b.or_(r, a, imm(0x000f), 16);
    emit_store(1);
    b.xor_(r, a, imm(0xffff), 16);
    emit_store(2);
    b.shr(r, a, imm(4), 16);
    emit_store(3);
    b.asr(r, imm((uint32_t)-16), imm(2), 16);
    emit_store(4);
    b.sub(r, imm(10), imm(3), 16);
    emit_store(5);
    b.mad(r, imm(3), imm(4), imm(5), 16);
    emit_store(6);
    b.min_(r, imm((uint32_t)-2), imm(3), 16);
    emit_store(7);
    b.max_(r, imm((uint32_t)-2), imm(3), 16);
    emit_store(8);
    b.avg(r, imm(3), imm(4), 16);
    emit_store(9);
    b.not_(r, imm(0), 16);
    emit_store(10);
    b.halt();
    runFull(b.finish(), {(uint32_t)out});

    EXPECT_EQ(memory.read32(out + 0 * 64), 0xf000u);
    EXPECT_EQ(memory.read32(out + 1 * 64), 0xf0ffu);
    EXPECT_EQ(memory.read32(out + 2 * 64), 0x0f0fu);
    EXPECT_EQ(memory.read32(out + 3 * 64), 0x0f0fu);
    EXPECT_EQ(memory.read32(out + 4 * 64), (uint32_t)-4);
    EXPECT_EQ(memory.read32(out + 5 * 64), 7u);
    EXPECT_EQ(memory.read32(out + 6 * 64), 17u);
    EXPECT_EQ(memory.read32(out + 7 * 64), (uint32_t)-2);
    EXPECT_EQ(memory.read32(out + 8 * 64), 3u);
    EXPECT_EQ(memory.read32(out + 9 * 64), 4u);
    EXPECT_EQ(memory.read32(out + 10 * 64), 0xffffffffu);
}

TEST_F(ExecutorTest, FloatOpsSemantics)
{
    uint64_t out = memory.allocate(1024);
    KernelBuilder b("fops", 1);
    Reg r = b.reg(), addr = b.reg();

    auto emit_store = [&](int slot) {
        b.shl(addr, b.globalIds(), imm(2), 16);
        b.add(addr, addr, b.arg(0), 16);
        b.store(r, addr, 4, 16, slot * 64);
    };

    b.fadd(r, fimm(1.5f), fimm(2.25f), 16);
    emit_store(0);
    b.fmul(r, fimm(3.0f), fimm(0.5f), 16);
    emit_store(1);
    b.fmad(r, fimm(2.0f), fimm(3.0f), fimm(1.0f), 16);
    emit_store(2);
    b.fdiv(r, fimm(7.0f), fimm(2.0f), 16);
    emit_store(3);
    b.sqrt(r, fimm(16.0f), 16);
    emit_store(4);
    b.rsqrt(r, fimm(4.0f), 16);
    emit_store(5);
    b.frc(r, fimm(2.75f), 16);
    emit_store(6);
    b.exp2(r, fimm(3.0f), 16);
    emit_store(7);
    b.log2(r, fimm(8.0f), 16);
    emit_store(8);
    b.lrp(r, fimm(0.25f), fimm(8.0f), fimm(0.0f), 16);
    emit_store(9);
    b.halt();
    runFull(b.finish(), {(uint32_t)out});

    auto f = [&](int slot) {
        return std::bit_cast<float>(memory.read32(out + slot * 64));
    };
    EXPECT_FLOAT_EQ(f(0), 3.75f);
    EXPECT_FLOAT_EQ(f(1), 1.5f);
    EXPECT_FLOAT_EQ(f(2), 7.0f);
    EXPECT_FLOAT_EQ(f(3), 3.5f);
    EXPECT_FLOAT_EQ(f(4), 4.0f);
    EXPECT_FLOAT_EQ(f(5), 0.5f);
    EXPECT_FLOAT_EQ(f(6), 0.75f);
    EXPECT_FLOAT_EQ(f(7), 8.0f);
    EXPECT_FLOAT_EQ(f(8), 3.0f);
    EXPECT_FLOAT_EQ(f(9), 2.0f);
}

TEST_F(ExecutorTest, SelUsesFlag)
{
    uint64_t out = memory.allocate(256);
    KernelBuilder b("sel", 1);
    Flag f = b.flag();
    Reg r = b.reg(), addr = b.reg();
    // flag[lane] = (lane < 8)
    b.cmp(CmpOp::Lt, f, b.globalIds(), imm(8), 16);
    b.sel(r, f, imm(111), imm(222), 16);
    b.shl(addr, b.globalIds(), imm(2), 16);
    b.add(addr, addr, b.arg(0), 16);
    b.store(r, addr, 4, 16);
    b.halt();
    runFull(b.finish(), {(uint32_t)out});

    for (uint32_t lane = 0; lane < 16; ++lane) {
        EXPECT_EQ(memory.read32(out + lane * 4),
                  lane < 8 ? 111u : 222u);
    }
}

TEST_F(ExecutorTest, LoopIterationCount)
{
    uint64_t out = memory.allocate(256);
    KernelBuilder b("loop", 1);
    Reg c = b.reg(), acc = b.reg(), addr = b.reg();
    b.mov(acc, imm(0), 16);
    b.beginLoop(c, imm(37));
    b.add(acc, acc, imm(2), 16);
    b.endLoop();
    b.shl(addr, b.globalIds(), imm(2), 16);
    b.add(addr, addr, b.arg(0), 16);
    b.store(acc, addr, 4, 16);
    b.halt();
    runFull(b.finish(), {(uint32_t)out});
    EXPECT_EQ(memory.read32(out), 74u);
}

TEST_F(ExecutorTest, CallRetExecutes)
{
    uint64_t out = memory.allocate(256);
    KernelBuilder b("callret", 1);
    Reg acc = b.reg(), addr = b.reg();
    b.mov(acc, imm(1), 1);
    b.call("twice");
    b.call("twice");
    b.shl(addr, b.globalIds(), imm(2), 1);
    b.add(addr, addr, b.arg(0), 1);
    b.store(acc, addr, 4, 1);
    b.halt();
    b.label("twice");
    b.mul(acc, acc, imm(2), 1);
    b.ret();
    runFull(b.finish(), {(uint32_t)out});
    EXPECT_EQ(memory.read32(out), 4u);
}

TEST_F(ExecutorTest, FlagModesAnyAll)
{
    uint64_t out = memory.allocate(256);
    KernelBuilder b("flags", 1);
    Flag f = b.flag();
    Reg r = b.reg(), addr = b.reg();
    b.mov(r, imm(0), 1);
    // Lanes 0..7 true, 8..15 false.
    b.cmp(CmpOp::Lt, f, b.globalIds(), imm(8), 16);
    {
        isa::Instruction br;
        // Any over 16 lanes -> taken.
        b.brc(f, "any_taken", isa::FlagMode::Any);
        (void)br;
    }
    b.jmp("after_any");
    b.label("any_taken");
    b.or_(r, r, imm(1), 1);
    b.label("after_any");
    // All over 16 lanes -> not taken.
    b.brc(f, "all_taken", isa::FlagMode::All);
    b.jmp("store");
    b.label("all_taken");
    b.or_(r, r, imm(2), 1);
    b.label("store");
    b.shl(addr, b.globalIds(), imm(2), 1);
    b.add(addr, addr, b.arg(0), 1);
    b.store(r, addr, 4, 1);
    b.halt();
    KernelBinary bin = b.finish();
    // The All-branch aggregates over the branch's own width.
    for (auto &block : bin.blocks) {
        for (auto &ins : block.instrs) {
            if (ins.op == isa::Opcode::Brc ||
                ins.op == isa::Opcode::Brnc) {
                ins.simdWidth = 16;
            }
        }
    }
    isa::verify(bin);

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 16;
    d.args = {(uint32_t)out};
    exec.run(d, Executor::Mode::Full);
    EXPECT_EQ(memory.read32(out), 1u);
}

TEST_F(ExecutorTest, LocalMemoryIsPerThread)
{
    uint64_t out = memory.allocate(4096);
    KernelBuilder b("localmem", 1);
    Reg la = b.reg(), v = b.reg(), addr = b.reg();
    b.mov(la, imm(64), 1);
    // Write thread id to local, read it back, store to global.
    Reg tid = b.reg();
    b.mov(tid, b.dispatchInfo(), 1);
    b.store(tid, la, 4, 1, 0, isa::AddrSpace::Local);
    b.load(v, la, 4, 1, 0, isa::AddrSpace::Local);
    b.shl(addr, tid, imm(2), 1);
    b.add(addr, addr, b.arg(0), 1);
    b.store(v, addr, 4, 1);
    b.halt();
    KernelBinary bin = b.finish();

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 64; // 4 threads
    d.simdWidth = 16;
    d.args = {(uint32_t)out};
    exec.run(d, Executor::Mode::Full);
    for (uint32_t t = 0; t < 4; ++t)
        EXPECT_EQ(memory.read32(out + t * 4), t);
}

// --- profiles ---------------------------------------------------------

TEST_F(ExecutorTest, ProfileCountsMatchStaticExpectation)
{
    KernelBuilder b("counts", 0);
    Reg c = b.reg(), x = b.reg();
    b.mov(x, imm(0), 16);             // 1 move
    b.beginLoop(c, imm(10));          // 1 scalar mov
    b.fmad(x, x, x, x, 16);           // 10 fmad
    b.xor_(x, x, imm(1), 8);          // 10 xor
    b.endLoop();                      // 10 x (add, cmp, brc)
    b.halt();                         // 1 halt
    KernelBinary bin = b.finish();

    ExecProfile p = runFull(bin, {});
    EXPECT_EQ(p.numThreads, 1u);
    EXPECT_EQ(p.opcodeCounts[(int)isa::Opcode::FMad], 10u);
    EXPECT_EQ(p.opcodeCounts[(int)isa::Opcode::Xor], 10u);
    EXPECT_EQ(p.opcodeCounts[(int)isa::Opcode::Cmp], 10u);
    EXPECT_EQ(p.opcodeCounts[(int)isa::Opcode::Brc], 10u);
    EXPECT_EQ(p.opcodeCounts[(int)isa::Opcode::Halt], 1u);
    EXPECT_EQ(p.classCounts[(int)isa::OpClass::Computation],
              10u + 10u); // fmad + loop add
    EXPECT_EQ(p.simdCounts[simdBin(8)], 10u);
    EXPECT_EQ(p.dynInstrs, 2u + 10u * 5u + 1u);
    EXPECT_EQ(p.instrumentationInstrs, 0u);
}

TEST_F(ExecutorTest, BytesTrackedBySends)
{
    uint64_t buf = memory.allocate(4096);
    KernelBuilder b("bytes", 1);
    Reg a = b.reg(), v = b.reg();
    b.shl(a, b.globalIds(), imm(2), 16);
    b.add(a, a, b.arg(0), 16);
    b.load(v, a, 4, 16);
    b.store(v, a, 8, 16);
    b.halt();
    ExecProfile p = runFull(b.finish(), {(uint32_t)buf});
    EXPECT_EQ(p.bytesRead, 4u * 16u);
    EXPECT_EQ(p.bytesWritten, 8u * 16u);
    EXPECT_EQ(p.sendCount, 2u);
}

TEST_F(ExecutorTest, FastEqualsFullOnProfiles)
{
    // The core soundness property: Fast mode must produce exactly
    // the same profile as Full mode for thread-invariant kernels.
    workloads::TemplateJit jit;
    for (const char *tname :
         {"stream", "blur", "hash", "aes", "nbody", "julia",
          "blend", "effect", "reduce", "stress", "deep", "lut",
          "fft", "particle", "flow", "shader", "matmul", "ao",
          "histogram", "scan"}) {
        isa::KernelSource src;
        src.name = std::string("feq_") + tname;
        src.templateName = tname;
        isa::KernelBinary bin = jit.compile(src);

        Dispatch d;
        d.binary = &bin;
        d.globalSize = 64;
        d.simdWidth = 16;
        uint32_t base = (uint32_t)memory.allocate(1 << 20);
        d.args.assign(bin.numArgs, base);

        ExecProfile fast = exec.run(d, Executor::Mode::Fast);
        ExecProfile full = exec.run(d, Executor::Mode::Full);

        EXPECT_EQ(fast.dynInstrs, full.dynInstrs) << tname;
        EXPECT_EQ(fast.blockCounts, full.blockCounts) << tname;
        EXPECT_EQ(fast.bytesRead, full.bytesRead) << tname;
        EXPECT_EQ(fast.bytesWritten, full.bytesWritten) << tname;
        EXPECT_EQ(fast.opcodeCounts, full.opcodeCounts) << tname;
        EXPECT_EQ(fast.simdCounts, full.simdCounts) << tname;
        memory.resetAllocator();
    }
}

TEST_F(ExecutorTest, HomogeneousScalingIsExact)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "scale_test";
    src.templateName = "julia";
    isa::KernelBinary bin = jit.compile(src);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch small;
    small.binary = &bin;
    small.globalSize = 16;
    small.simdWidth = 16;
    small.args = {base, 0x3f000000u, 0x3e000000u};

    Dispatch big = small;
    big.globalSize = 16 * 1000;

    ExecProfile ps = exec.run(small, Executor::Mode::Fast);
    ExecProfile pb = exec.run(big, Executor::Mode::Fast);
    EXPECT_EQ(pb.numThreads, 1000u);
    EXPECT_EQ(pb.dynInstrs, ps.dynInstrs * 1000u);
    EXPECT_EQ(pb.bytesWritten, ps.bytesWritten * 1000u);
}

TEST_F(ExecutorTest, HeterogeneousThreadsDiffer)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "het";
    src.templateName = "cascade";
    src.params = {12, 0xfff, 8};
    isa::KernelBinary bin = jit.compile(src);
    EXPECT_TRUE(exec.relevance(&bin).threadDependent);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 64; // 64 threads, below the sampling cap
    d.simdWidth = 16;
    d.args = {base, base, 2, 0};

    ExecProfile fast = exec.run(d, Executor::Mode::Fast);
    ExecProfile full = exec.run(d, Executor::Mode::Full);
    // Below the cap, fast mode runs every thread: exact equality.
    EXPECT_EQ(fast.dynInstrs, full.dynInstrs);
    EXPECT_EQ(fast.blockCounts, full.blockCounts);
}

TEST_F(ExecutorTest, StratifiedSamplingCoversAllThreads)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "strat";
    src.templateName = "cascade";
    src.params = {12, 0xfff, 8};
    isa::KernelBinary bin = jit.compile(src);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 512;
    d.simdWidth = 16;
    d.args = {base, base, 2, 0};

    exec.setMaxExplicitThreads(64);
    ExecProfile sampled = exec.run(d, Executor::Mode::Fast);
    exec.setMaxExplicitThreads(1024);
    ExecProfile exact = exec.run(d, Executor::Mode::Fast);

    EXPECT_EQ(sampled.numThreads, exact.numThreads);
    // Sampled counts are approximate but must be within a factor of
    // the exact ones and weight-complete in thread count.
    double ratio =
        (double)sampled.dynInstrs / (double)exact.dynInstrs;
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.3);
}

// --- guard rails --------------------------------------------------------

TEST_F(ExecutorTest, RunawayKernelPanics)
{
    setLogQuiet(true);
    KernelBuilder b("forever", 0);
    Reg x = b.reg();
    b.label("spin");
    b.add(x, x, imm(1), 1);
    b.jmp("spin");
    KernelBinary bin = b.finish();

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 16;
    exec.setThreadInstrLimit(10000);
    EXPECT_THROW(exec.run(d, Executor::Mode::Full), PanicError);
    setLogQuiet(false);
}

TEST_F(ExecutorTest, MissingArgsPanics)
{
    setLogQuiet(true);
    KernelBuilder b("needargs", 2);
    Reg r = b.reg();
    b.mov(r, b.arg(1), 1);
    b.halt();
    KernelBinary bin = b.finish();
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 16;
    d.args = {1}; // one of two
    EXPECT_THROW(exec.run(d, Executor::Mode::Full), PanicError);
    setLogQuiet(false);
}

TEST_F(ExecutorTest, BadSimdWidthPanics)
{
    setLogQuiet(true);
    KernelBuilder b("w", 0);
    b.halt();
    KernelBinary bin = b.finish();
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 4;
    EXPECT_THROW(exec.run(d, Executor::Mode::Full), PanicError);
    setLogQuiet(false);
}

TEST_F(ExecutorTest, MemAccessCallbackSeesAllTraffic)
{
    uint64_t buf = memory.allocate(4096);
    KernelBuilder b("cb", 1);
    Reg a = b.reg(), v = b.reg();
    b.shl(a, b.globalIds(), imm(2), 16);
    b.add(a, a, b.arg(0), 16);
    b.load(v, a, 4, 16);
    b.store(v, a, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    uint64_t reads = 0, writes = 0, bytes = 0;
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 32;
    d.simdWidth = 16;
    d.args = {(uint32_t)buf};
    exec.run(d, Executor::Mode::Full, nullptr,
             [&](uint64_t addr, uint32_t n, bool w) {
                 EXPECT_GE(addr, buf);
                 bytes += n;
                 (w ? writes : reads) += 1;
             });
    EXPECT_EQ(reads, 32u);
    EXPECT_EQ(writes, 32u);
    EXPECT_EQ(bytes, 32u * 4u * 2u);
}

TEST_F(ExecutorTest, BlockTraceMatchesControlFlow)
{
    KernelBuilder b("trace", 0);
    Reg c = b.reg(), x = b.reg();
    b.mov(x, imm(0), 8);
    b.beginLoop(c, imm(5));
    b.add(x, x, imm(1), 8);
    b.endLoop();
    b.halt();
    KernelBinary bin = b.finish();

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 16;
    std::vector<uint32_t> trace = exec.blockTrace(d, 0);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.front(), 0u);
    // The loop body block appears exactly 5 times.
    std::vector<int> counts(bin.blocks.size(), 0);
    for (uint32_t blk : trace)
        ++counts[blk];
    bool found5 = false;
    for (int n : counts)
        found5 = found5 || n == 5;
    EXPECT_TRUE(found5);
}

TEST_F(ExecutorTest, IssueCyclesPositiveAndScaled)
{
    KernelBuilder b("cyc", 0);
    Reg x = b.reg();
    b.fmul(x, x, x, 16);
    b.sin(x, x, 16);
    b.halt();
    ExecProfile p = runFull(b.finish(), {});
    // 16-wide on 4 FPU lanes: fmul 4 cycles, sin 16, halt 1.
    EXPECT_DOUBLE_EQ(p.threadCycles, 4.0 + 16.0 + 1.0);
}

} // anonymous namespace
} // namespace gt::gpu
