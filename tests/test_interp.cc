/**
 * @file
 * Differential tests between the executor's two interpreter backends.
 *
 * The uop backend (predecoded micro-ops with superblock chaining) must
 * be observationally indistinguishable from the reference switch
 * backend: bitwise-identical ExecProfiles (including threadCycles,
 * which is a double and therefore sensitive to FP summation order),
 * identical trace-buffer deltas for instrumented binaries, identical
 * block traces (including truncation points), and identical memory
 * contents after Full-mode runs. The matrix covers every kernel
 * template under {switch,uops} x {Full,Fast} x {plain,instrumented}.
 *
 * Also covered here: the plan-cache generation id (satellite fix — a
 * new binary at a recycled address must not reuse the stale plan) and
 * the soundness of the reset elision (registers outside a kernel's
 * read-set and untouched local memory are skipped during reset, which
 * must be invisible even when consecutive dispatches share the
 * executor's reusable thread context).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "gpu/executor.hh"
#include "gtpin/rewriter.hh"
#include "isa/builder.hh"
#include "workloads/templates.hh"

namespace gt::gpu
{
namespace
{

using gtpin::Instrumenter;
using gtpin::SlotAllocator;
using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Reg;
using isa::imm;

constexpr uint64_t memBytes = 16 << 20;

void
expectProfilesEqual(const ExecProfile &a, const ExecProfile &b)
{
    EXPECT_EQ(a.numThreads, b.numThreads);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.instrumentationInstrs, b.instrumentationInstrs);
    EXPECT_EQ(a.blockCounts, b.blockCounts);
    EXPECT_EQ(a.opcodeCounts, b.opcodeCounts);
    EXPECT_EQ(a.classCounts, b.classCounts);
    EXPECT_EQ(a.simdCounts, b.simdCounts);
    EXPECT_EQ(a.bytesRead, b.bytesRead);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
    EXPECT_EQ(a.sendCount, b.sendCount);
    // Bitwise: both backends must accrue cycles in the same order.
    EXPECT_EQ(a.threadCycles, b.threadCycles);
}

/**
 * One executor per backend, each over its own device memory so
 * Full-mode stores can be compared byte for byte afterwards. The
 * allocators run in lockstep, so buffers land at the same addresses.
 */
class BackendPair
{
  public:
    BackendPair()
        : config(DeviceConfig::hd4000()), memSwitch(memBytes),
          memUops(memBytes), execSwitch(config, memSwitch),
          execUops(config, memUops)
    {
        execSwitch.setBackend(Executor::Backend::Switch);
        execUops.setBackend(Executor::Backend::Uops);
    }

    uint64_t
    allocate(uint64_t size)
    {
        uint64_t addr = memSwitch.allocate(size);
        uint64_t addr2 = memUops.allocate(size);
        GT_ASSERT(addr == addr2, "backend allocators diverged");
        return addr;
    }

    /** Run the dispatch on both backends; expect equal profiles. */
    void
    runBoth(const Dispatch &d, Executor::Mode mode,
            TraceBuffer *trace_switch = nullptr,
            TraceBuffer *trace_uops = nullptr)
    {
        ExecProfile ps = execSwitch.run(d, mode, trace_switch);
        ExecProfile pu = execUops.run(d, mode, trace_uops);
        expectProfilesEqual(ps, pu);
    }

    /** Compare the first @p bytes of both device memories. */
    void
    expectMemoryEqual(uint64_t bytes)
    {
        for (uint64_t a = 0; a + 4 <= bytes; a += 4) {
            ASSERT_EQ(memSwitch.read32(a), memUops.read32(a))
                << "memory diverged at address " << a;
        }
    }

    DeviceConfig config;
    DeviceMemory memSwitch;
    DeviceMemory memUops;
    Executor execSwitch;
    Executor execUops;
};

class InterpDiff : public ::testing::TestWithParam<std::string>
{
  protected:
    KernelBinary
    compile(int64_t leading = 8)
    {
        isa::KernelSource src;
        src.name = "diff_" + GetParam();
        src.templateName = GetParam();
        src.params = {leading};
        return workloads::TemplateJit().compile(src);
    }

    Dispatch
    dispatchFor(const KernelBinary &bin, uint64_t gws = 64)
    {
        Dispatch d;
        d.binary = &bin;
        d.globalSize = gws;
        d.simdWidth = 16;
        uint32_t base = (uint32_t)pair.allocate(4 << 20);
        d.args.assign(bin.numArgs, base);
        return d;
    }

    /** Instrument @p bin the way the GT-Pin tools do: a dynamic
     * instruction counter on every block plus a kernel timer. */
    KernelBinary
    instrument(const KernelBinary &bin, uint32_t &num_slots)
    {
        SlotAllocator slots;
        Instrumenter ins(bin, slots);
        for (const auto &block : bin.blocks) {
            ins.countBlockEntry(block.id, ins.allocSlot(),
                                (uint32_t)block.instrs.size());
        }
        ins.timeKernel(ins.allocSlot());
        num_slots = slots.allocated();
        return ins.apply();
    }

    BackendPair pair;
};

TEST_P(InterpDiff, FullModePlain)
{
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    pair.runBoth(d, Executor::Mode::Full);
    pair.expectMemoryEqual(pair.memSwitch.allocated());
}

TEST_P(InterpDiff, FastModePlain)
{
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    pair.runBoth(d, Executor::Mode::Fast);
}

TEST_P(InterpDiff, FullModeInstrumented)
{
    KernelBinary bin = compile();
    uint32_t num_slots = 0;
    KernelBinary rewritten = instrument(bin, num_slots);
    Dispatch d = dispatchFor(rewritten);
    TraceBuffer ts(num_slots), tu(num_slots);
    pair.runBoth(d, Executor::Mode::Full, &ts, &tu);
    EXPECT_EQ(ts.raw(), tu.raw());
    pair.expectMemoryEqual(pair.memSwitch.allocated());
}

TEST_P(InterpDiff, FastModeInstrumented)
{
    KernelBinary bin = compile();
    uint32_t num_slots = 0;
    KernelBinary rewritten = instrument(bin, num_slots);
    Dispatch d = dispatchFor(rewritten);
    TraceBuffer ts(num_slots), tu(num_slots);
    pair.runBoth(d, Executor::Mode::Fast, &ts, &tu);
    EXPECT_EQ(ts.raw(), tu.raw());
}

TEST_P(InterpDiff, BlockTraceIdentical)
{
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    auto ts = pair.execSwitch.blockTrace(d, 0);
    auto tu = pair.execUops.blockTrace(d, 0);
    EXPECT_EQ(ts, tu);
}

TEST_P(InterpDiff, TruncatedBlockTraceIdentical)
{
    // The truncation point must agree even when it lands mid-way
    // through a superblock: the uop backend's trace path steps one
    // member basic block at a time.
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    for (uint64_t max_len : {1, 2, 3, 7}) {
        auto ts = pair.execSwitch.blockTrace(d, 0, max_len);
        auto tu = pair.execUops.blockTrace(d, 0, max_len);
        EXPECT_EQ(ts, tu) << "max_len=" << max_len;
        EXPECT_LE(ts.size(), max_len);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, InterpDiff,
    ::testing::ValuesIn(workloads::builtinTemplates().templateNames()),
    [](const auto &info) { return info.param; });

// --- thread-dependent control flow ------------------------------------

TEST(InterpDiffCascade, ThreadDependentManyThreads)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "casc";
    src.templateName = "cascade";
    src.params = {12, 0xfff, 8};
    KernelBinary bin = jit.compile(src);

    BackendPair pair;
    uint32_t base = (uint32_t)pair.allocate(1 << 20);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 64;
    d.simdWidth = 16;
    d.args = {base, base, 2, 0};

    for (auto mode : {Executor::Mode::Full, Executor::Mode::Fast}) {
        ExecProfile ps = pair.execSwitch.run(d, mode);
        ExecProfile pu = pair.execUops.run(d, mode);
        expectProfilesEqual(ps, pu);
    }
}

TEST(InterpDiffCascade, SingleThreadMatchesToo)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "casc1";
    src.templateName = "cascade";
    src.params = {12, 0xfff, 8};
    KernelBinary bin = jit.compile(src);

    BackendPair pair;
    uint32_t base = (uint32_t)pair.allocate(1 << 20);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16;
    d.simdWidth = 16;
    d.args = {base, base, 2, 0};

    ExecProfile ps = pair.execSwitch.run(d, Executor::Mode::Full);
    ExecProfile pu = pair.execUops.run(d, Executor::Mode::Full);
    expectProfilesEqual(ps, pu);
}

// --- plan-cache identity (generation id satellite) ---------------------

namespace
{

KernelBinary
buildCountedLoop(uint32_t trips)
{
    KernelBuilder b("genkey", 0);
    Reg c = b.reg();
    b.beginLoop(c, imm(trips));
    Reg x = b.reg();
    b.add(x, x, imm(1), 16);
    b.endLoop();
    b.halt();
    return b.finish();
}

} // anonymous namespace

TEST(InterpPlanCache, GenerationIdInvalidatesRecycledAddress)
{
    // Two binaries with identical name, block count, and static
    // instruction count — only a loop-trip immediate differs — placed
    // at the *same address*. Before the generation id, the shape
    // check could not tell them apart and the second run replayed the
    // first binary's predecoded plan.
    DeviceConfig config = DeviceConfig::hd4000();
    DeviceMemory memory(memBytes);
    Executor exec(config, memory);

    auto holder = std::make_unique<KernelBinary>(buildCountedLoop(4));
    Dispatch d;
    d.binary = holder.get();
    d.globalSize = 16;
    d.simdWidth = 16;
    ExecProfile before = exec.run(d, Executor::Mode::Full);

    KernelBinary longer = buildCountedLoop(16);
    ASSERT_EQ(holder->blocks.size(), longer.blocks.size());
    ASSERT_EQ(holder->staticInstrCount(), longer.staticInstrCount());
    *holder = longer;

    ExecProfile after = exec.run(d, Executor::Mode::Full);
    EXPECT_GT(after.dynInstrs, before.dynInstrs);
}

// --- reset elision soundness ------------------------------------------

TEST(InterpResetElision, StaleRegistersInvisibleAcrossDispatches)
{
    // Kernel A dirties a high register; kernel B (same executor, so
    // the same reusable ThreadCtx) reads a register it never writes
    // and stores it. The read must observe zero: the elided reset
    // still clears every register in B's static read-set.
    DeviceConfig config = DeviceConfig::hd4000();
    DeviceMemory memory(memBytes);
    Executor exec(config, memory);
    uint64_t out = memory.allocate(256);

    KernelBuilder a("dirty", 0);
    for (int i = 0; i < 60; ++i) {
        Reg r = a.reg();
        a.mov(r, imm(0xdeadbeef), 16);
    }
    a.halt();
    KernelBinary binA = a.finish();

    KernelBuilder bb("reader", 1);
    Reg addr = bb.reg();
    bb.shl(addr, bb.globalIds(), imm(2), 16);
    bb.add(addr, addr, bb.arg(0), 16);
    Reg never_written = bb.reg();
    bb.store(never_written, addr, 4, 16);
    bb.halt();
    KernelBinary binB = bb.finish();

    Dispatch da;
    da.binary = &binA;
    da.globalSize = 16;
    da.simdWidth = 16;
    exec.run(da, Executor::Mode::Full);

    Dispatch db;
    db.binary = &binB;
    db.globalSize = 16;
    db.simdWidth = 16;
    db.args = {(uint32_t)out};
    exec.run(db, Executor::Mode::Full);

    for (uint32_t lane = 0; lane < 16; ++lane)
        EXPECT_EQ(memory.read32(out + lane * 4), 0u);
}

TEST(InterpResetElision, StaleLocalMemoryInvisibleAcrossDispatches)
{
    // Kernel A fills a local-memory word; kernel B loads the same
    // word. B touches local memory, so its reset must clear the
    // 16 KB block even though A ran first in the same ThreadCtx.
    DeviceConfig config = DeviceConfig::hd4000();
    DeviceMemory memory(memBytes);
    Executor exec(config, memory);
    uint64_t out = memory.allocate(256);

    KernelBuilder a("ldirty", 0);
    Reg laddr = a.reg();
    a.mov(laddr, imm(0), 16);
    Reg v = a.reg();
    a.mov(v, imm(0x12345678), 16);
    a.store(v, laddr, 4, 16, 0, isa::AddrSpace::Local);
    a.halt();
    KernelBinary binA = a.finish();

    KernelBuilder bb("lreader", 1);
    Reg laddr2 = bb.reg();
    bb.mov(laddr2, imm(0), 16);
    Reg got = bb.reg();
    bb.load(got, laddr2, 4, 16, 0, isa::AddrSpace::Local);
    Reg addr = bb.reg();
    bb.shl(addr, bb.globalIds(), imm(2), 16);
    bb.add(addr, addr, bb.arg(0), 16);
    bb.store(got, addr, 4, 16);
    bb.halt();
    KernelBinary binB = bb.finish();

    Dispatch da;
    da.binary = &binA;
    da.globalSize = 16;
    da.simdWidth = 16;
    exec.run(da, Executor::Mode::Full);

    Dispatch db;
    db.binary = &binB;
    db.globalSize = 16;
    db.simdWidth = 16;
    db.args = {(uint32_t)out};
    exec.run(db, Executor::Mode::Full);

    for (uint32_t lane = 0; lane < 16; ++lane)
        EXPECT_EQ(memory.read32(out + lane * 4), 0u);
}

} // anonymous namespace
} // namespace gt::gpu
