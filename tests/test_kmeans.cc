/**
 * @file
 * Differential tests for the pruned k-means backend: every result —
 * assignments, centroids, distortion, per-cluster weights, BIC,
 * chosen k, whole explorations — must be bitwise identical to the
 * Lloyd oracle, at every thread count, on real profiled workloads
 * and on adversarial synthetic populations (coincident points,
 * n < maxK, single point, empty clusters forcing the re-seed path).
 */

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/explorer.hh"
#include "core/feature_engine.hh"
#include "core/pipeline.hh"
#include "workloads/workload.hh"

namespace gt::core
{
namespace
{

using simpoint::Clustering;
using simpoint::ClusterOptions;
using simpoint::KMeansBackend;
using simpoint::KMeansRun;
using simpoint::KMeansStats;
using simpoint::Point;
using simpoint::projectedDims;

/** Synthetic population: @p groups Gaussian blobs of @p per points,
 * deterministically generated. */
std::vector<Point>
makePoints(Rng &rng, int groups, int per, double jitter)
{
    std::vector<Point> points;
    points.reserve((size_t)groups * (size_t)per);
    for (int g = 0; g < groups; ++g) {
        Point center{};
        for (int d = 0; d < projectedDims; ++d)
            center[d] = (double)((g * 7 + d) % 5) - 2.0;
        for (int i = 0; i < per; ++i) {
            Point p = center;
            for (int d = 0; d < projectedDims; ++d)
                p[d] += rng.nextGaussian(0.0, jitter);
            points.push_back(p);
        }
    }
    return points;
}

std::vector<double>
makeWeights(Rng &rng, size_t n)
{
    std::vector<double> weights(n);
    for (double &w : weights)
        w = 1.0 + rng.nextDouble() * 99.0;
    return weights;
}

KMeansRun
runWith(const std::vector<Point> &points,
        const std::vector<double> &weights, int k, uint64_t seed,
        KMeansBackend backend, sched::ThreadPool *pool = nullptr)
{
    Rng rng(seed);
    return simpoint::kmeansRun(points, weights, k, 30, rng, pool,
                               backend);
}

/** Bitwise equality of everything both backends must agree on
 * (stats are the one field allowed to differ). */
void
expectRunsEqual(const KMeansRun &a, const KMeansRun &b)
{
    ASSERT_EQ(a.assignment, b.assignment);
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    EXPECT_EQ(std::memcmp(a.centroids.data(), b.centroids.data(),
                          a.centroids.size() * sizeof(Point)),
              0);
    EXPECT_EQ(a.distortion, b.distortion); // bitwise
    ASSERT_EQ(a.clusterWeight.size(), b.clusterWeight.size());
    for (size_t c = 0; c < a.clusterWeight.size(); ++c)
        EXPECT_EQ(a.clusterWeight[c], b.clusterWeight[c]);
}

void
expectClusteringsEqual(const Clustering &a, const Clustering &b)
{
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representative, b.representative);
    ASSERT_EQ(a.weight.size(), b.weight.size());
    for (size_t c = 0; c < a.weight.size(); ++c)
        EXPECT_EQ(a.weight[c], b.weight[c]); // bitwise
    EXPECT_EQ(a.bic, b.bic);                 // bitwise
    EXPECT_EQ(a.distortion, b.distortion);   // bitwise
}

// --- kmeansRun: pruned vs lloyd on synthetic populations ----------

TEST(KMeansDiff, PrunedMatchesLloydAcrossKAndSeeds)
{
    Rng gen(101);
    std::vector<Point> points = makePoints(gen, 5, 40, 0.3);
    std::vector<double> weights = makeWeights(gen, points.size());
    for (uint64_t seed : {1ull, 42ull, 0x5eedull}) {
        for (int k = 1; k <= 10; ++k) {
            KMeansRun lloyd = runWith(points, weights, k, seed,
                                      KMeansBackend::Lloyd);
            KMeansRun pruned = runWith(points, weights, k, seed,
                                       KMeansBackend::Pruned);
            SCOPED_TRACE("k=" + std::to_string(k) +
                         " seed=" + std::to_string(seed));
            expectRunsEqual(lloyd, pruned);
        }
    }
}

TEST(KMeansDiff, TightClustersWithOverlap)
{
    // Overlapping blobs keep assignments churning for many
    // iterations — the regime where stale bounds could drift from
    // the oracle if the slack were wrong.
    Rng gen(202);
    std::vector<Point> points = makePoints(gen, 8, 25, 1.5);
    std::vector<double> weights(points.size(), 1.0);
    for (int k : {2, 5, 8}) {
        expectRunsEqual(
            runWith(points, weights, k, 7, KMeansBackend::Lloyd),
            runWith(points, weights, k, 7, KMeansBackend::Pruned));
    }
}

TEST(KMeansDiff, StatsAccountForEveryAssignmentDecision)
{
    Rng gen(303);
    std::vector<Point> points = makePoints(gen, 4, 60, 0.2);
    std::vector<double> weights = makeWeights(gen, points.size());

    KMeansRun lloyd =
        runWith(points, weights, 6, 11, KMeansBackend::Lloyd);
    EXPECT_EQ(lloyd.stats.fullScans, lloyd.stats.assignSteps);
    EXPECT_EQ(lloyd.stats.boundPrunes, 0u);
    EXPECT_EQ(lloyd.stats.tightenPrunes, 0u);
    EXPECT_EQ(lloyd.stats.memoHits, 0u);
    EXPECT_EQ(lloyd.stats.pruneRate(), 0.0);

    KMeansRun pruned =
        runWith(points, weights, 6, 11, KMeansBackend::Pruned);
    EXPECT_EQ(pruned.stats.assignSteps, lloyd.stats.assignSteps);
    EXPECT_EQ(pruned.stats.boundPrunes + pruned.stats.tightenPrunes +
                  pruned.stats.memoHits + pruned.stats.fullScans,
              pruned.stats.assignSteps);
    // Separable blobs converge with most points never rescanned.
    EXPECT_GT(pruned.stats.boundPrunes + pruned.stats.tightenPrunes,
              0u);
    EXPECT_LT(pruned.stats.fullScans, pruned.stats.assignSteps);
    EXPECT_GT(pruned.stats.pruneRate(), 0.0);
    EXPECT_LE(pruned.stats.pruneRate(), 1.0);
}

TEST(KMeansDiff, ThreadCountInvariant)
{
    Rng gen(404);
    std::vector<Point> points = makePoints(gen, 6, 200, 0.5);
    std::vector<double> weights = makeWeights(gen, points.size());

    sched::ThreadPool serial(1);
    for (KMeansBackend backend :
         {KMeansBackend::Lloyd, KMeansBackend::Pruned}) {
        KMeansRun base =
            runWith(points, weights, 7, 3, backend, &serial);
        for (unsigned threads :
             {4u, std::max(1u, std::thread::hardware_concurrency())}) {
            sched::ThreadPool pool(threads);
            KMeansRun par =
                runWith(points, weights, 7, 3, backend, &pool);
            expectRunsEqual(base, par);
            // The work counters are plain sums — invariant too.
            EXPECT_EQ(base.stats.boundPrunes, par.stats.boundPrunes);
            EXPECT_EQ(base.stats.tightenPrunes,
                      par.stats.tightenPrunes);
            EXPECT_EQ(base.stats.memoHits, par.stats.memoHits);
            EXPECT_EQ(base.stats.fullScans, par.stats.fullScans);
        }
    }
}

// --- Adversarial populations --------------------------------------

TEST(KMeansDiff, AllCoincidentPointsForceReseedPath)
{
    // Every point identical: seeding degenerates to the duplicate
    // path, ties all resolve to centroid 0, and the k-1 duplicate
    // clusters go empty — exercising the re-seed RNG draws, which
    // must advance identically on both backends.
    std::vector<Point> points(40, Point{});
    for (Point &p : points)
        p.fill(3.25);
    std::vector<double> weights(points.size(), 2.0);
    for (int k : {1, 3, 5}) {
        KMeansRun lloyd =
            runWith(points, weights, k, 99, KMeansBackend::Lloyd);
        KMeansRun pruned =
            runWith(points, weights, k, 99, KMeansBackend::Pruned);
        expectRunsEqual(lloyd, pruned);
        EXPECT_EQ(lloyd.distortion, 0.0);
        // Ties go to the lowest index: one carrier, k-1 empties.
        EXPECT_GT(lloyd.clusterWeight[0], 0.0);
        for (size_t c = 1; c < lloyd.clusterWeight.size(); ++c)
            EXPECT_EQ(lloyd.clusterWeight[c], 0.0);
    }
}

TEST(KMeansDiff, TwoValuePopulationLeavesEmptyClusters)
{
    // Two distinct values but k = 4: at least two clusters must end
    // empty, re-seeding every iteration until convergence.
    std::vector<Point> points;
    for (int i = 0; i < 12; ++i) {
        Point p{};
        p.fill(i < 6 ? -1.0 : 1.0);
        points.push_back(p);
    }
    std::vector<double> weights(points.size(), 1.0);
    KMeansRun lloyd =
        runWith(points, weights, 4, 5, KMeansBackend::Lloyd);
    KMeansRun pruned =
        runWith(points, weights, 4, 5, KMeansBackend::Pruned);
    expectRunsEqual(lloyd, pruned);
    size_t empty = 0;
    for (double w : lloyd.clusterWeight)
        empty += w == 0.0;
    EXPECT_GE(empty, 2u);
}

TEST(KMeansDiff, SinglePoint)
{
    std::vector<Point> points(1, Point{});
    points[0].fill(0.5);
    KMeansRun lloyd = runWith(points, {7.0}, 1, 1,
                              KMeansBackend::Lloyd);
    KMeansRun pruned = runWith(points, {7.0}, 1, 1,
                               KMeansBackend::Pruned);
    expectRunsEqual(lloyd, pruned);
    EXPECT_EQ(lloyd.assignment[0], 0);
    EXPECT_EQ(lloyd.distortion, 0.0);
}

TEST(KMeansDiff, GuardsBadInput)
{
    setLogQuiet(true);
    std::vector<Point> points(3, Point{});
    std::vector<double> weights(3, 1.0);
    Rng rng(1);
    EXPECT_THROW(simpoint::kmeansRun({}, {}, 1, 10, rng),
                 PanicError);
    EXPECT_THROW(simpoint::kmeansRun(points, {1.0}, 1, 10, rng),
                 PanicError);
    EXPECT_THROW(simpoint::kmeansRun(points, weights, 0, 10, rng),
                 PanicError);
    EXPECT_THROW(simpoint::kmeansRun(points, weights, 4, 10, rng),
                 PanicError);
    setLogQuiet(false);
}

// --- clusterPoints: the BIC sweep end to end ----------------------

TEST(KMeansDiff, ClusterPointsBackendsMatchBitwise)
{
    Rng gen(505);
    for (int groups : {1, 3, 7}) {
        std::vector<Point> points = makePoints(gen, groups, 30, 0.1);
        std::vector<double> weights =
            makeWeights(gen, points.size());
        ClusterOptions lloyd_opts, pruned_opts;
        lloyd_opts.backend = KMeansBackend::Lloyd;
        pruned_opts.backend = KMeansBackend::Pruned;
        Clustering lloyd =
            simpoint::clusterPoints(points, weights, lloyd_opts);
        Clustering pruned =
            simpoint::clusterPoints(points, weights, pruned_opts);
        SCOPED_TRACE("groups=" + std::to_string(groups));
        expectClusteringsEqual(lloyd, pruned);
        EXPECT_GT(pruned.stats.pruneRate(), 0.0);
        EXPECT_EQ(lloyd.stats.pruneRate(), 0.0);
        EXPECT_EQ(lloyd.stats.assignSteps, pruned.stats.assignSteps);
    }
}

TEST(KMeansDiff, PopulationSmallerThanMaxK)
{
    // n < maxK clamps the candidate sweep to k <= n.
    Rng gen(606);
    std::vector<Point> points = makePoints(gen, 3, 1, 0.0);
    std::vector<double> weights(points.size(), 1.0);
    ClusterOptions lloyd_opts, pruned_opts;
    lloyd_opts.backend = KMeansBackend::Lloyd;
    pruned_opts.backend = KMeansBackend::Pruned;
    lloyd_opts.maxK = pruned_opts.maxK = 10;
    Clustering lloyd =
        simpoint::clusterPoints(points, weights, lloyd_opts);
    Clustering pruned =
        simpoint::clusterPoints(points, weights, pruned_opts);
    expectClusteringsEqual(lloyd, pruned);
    EXPECT_LE(lloyd.k, 3);
}

// --- Real workloads: full explorations across all 30 configs ------

ProfiledApp
profiled(const char *name)
{
    const workloads::Workload *w = workloads::findWorkload(name);
    GT_ASSERT(w, "unknown workload ", name);
    return profileApp(*w);
}

class KMeansWorkloadTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KMeansWorkloadTest, ExplorationMatchesLloydBitwise)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    FeatureEngine engine(app.db, FeatureBackend::Flat);

    ClusterOptions lloyd_opts, pruned_opts;
    lloyd_opts.backend = KMeansBackend::Lloyd;
    pruned_opts.backend = KMeansBackend::Pruned;
    Exploration lloyd = exploreConfigs(app.db, lloyd_opts, 0, &engine);
    Exploration pruned =
        exploreConfigs(app.db, pruned_opts, 0, &engine);

    ASSERT_EQ(lloyd.results.size(), pruned.results.size());
    for (size_t i = 0; i < lloyd.results.size(); ++i) {
        const ConfigResult &rl = lloyd.results[i];
        const ConfigResult &rp = pruned.results[i];
        EXPECT_EQ(rl.selection.scheme, rp.selection.scheme);
        EXPECT_EQ(rl.selection.feature, rp.selection.feature);
        EXPECT_EQ(rl.selection.selected, rp.selection.selected);
        EXPECT_EQ(rl.selection.ratios, rp.selection.ratios); // bitwise
        EXPECT_EQ(rl.selection.selectedInstrs,
                  rp.selection.selectedInstrs);
        EXPECT_EQ(rl.errorPct, rp.errorPct); // bitwise
        // Projected SPI re-derives from the same selection; equal
        // selections make it bitwise equal, asserted directly.
        EXPECT_EQ(projectedSpi(app.db, rl.selection),
                  projectedSpi(app.db, rp.selection));
    }

    // Both backends decided the same number of assignments; the
    // pruned one skipped a nonzero share of the k-way scans.
    KMeansStats ls = lloyd.clusterStats();
    KMeansStats ps = pruned.clusterStats();
    EXPECT_EQ(ls.assignSteps, ps.assignSteps);
    EXPECT_EQ(ls.fullScans, ls.assignSteps);
    EXPECT_GT(ps.pruneRate(), 0.0);
    EXPECT_LT(ps.fullScans, ps.assignSteps);
    setLogQuiet(false);
}

TEST_P(KMeansWorkloadTest, PrunedExplorationIsThreadCountInvariant)
{
    setLogQuiet(true);
    ProfiledApp app = profiled(GetParam());
    FeatureEngine engine(app.db, FeatureBackend::Flat);

    auto explore_with = [&](unsigned threads) {
        sched::ThreadPool pool(threads);
        ClusterOptions options;
        options.backend = KMeansBackend::Pruned;
        options.pool = &pool;
        return exploreConfigs(app.db, options, 0, &engine);
    };

    Exploration serial = explore_with(1);
    for (unsigned threads :
         {4u, std::max(1u, std::thread::hardware_concurrency())}) {
        Exploration par = explore_with(threads);
        ASSERT_EQ(serial.results.size(), par.results.size());
        for (size_t i = 0; i < serial.results.size(); ++i) {
            EXPECT_EQ(serial.results[i].selection.selected,
                      par.results[i].selection.selected);
            EXPECT_EQ(serial.results[i].selection.ratios,
                      par.results[i].selection.ratios);
            EXPECT_EQ(serial.results[i].errorPct,
                      par.results[i].errorPct);
        }
        KMeansStats a = serial.clusterStats();
        KMeansStats b = par.clusterStats();
        EXPECT_EQ(a.assignSteps, b.assignSteps);
        EXPECT_EQ(a.boundPrunes, b.boundPrunes);
        EXPECT_EQ(a.tightenPrunes, b.tightenPrunes);
        EXPECT_EQ(a.memoHits, b.memoHits);
        EXPECT_EQ(a.fullScans, b.fullScans);
    }
    setLogQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(
    TwoWorkloads, KMeansWorkloadTest,
    ::testing::Values("cb-histogram-buffer", "cb-gaussian-image"),
    [](const auto &info) {
        std::string out;
        for (char c : std::string(info.param))
            out += std::isalnum((unsigned char)c) ? c : '_';
        return out;
    });

// --- Backend selection --------------------------------------------

TEST(KMeansBackendSelect, NamesRoundTrip)
{
    EXPECT_STREQ(simpoint::kmeansBackendName(KMeansBackend::Lloyd),
                 "lloyd");
    EXPECT_STREQ(simpoint::kmeansBackendName(KMeansBackend::Pruned),
                 "pruned");
}

TEST(KMeansBackendSelect, DefaultIsAValidBackend)
{
    // The process-wide default is env-dependent (GT_KMEANS); it must
    // be one of the two real backends either way.
    KMeansBackend b = simpoint::defaultKMeansBackend();
    EXPECT_TRUE(b == KMeansBackend::Lloyd ||
                b == KMeansBackend::Pruned);
}

} // anonymous namespace
} // namespace gt::core
