/**
 * @file
 * Profiling-service differential tests: the streaming
 * TraceDatabase::Builder, incremental interval division, incremental
 * feature columns, incremental selection refresh, and the shared
 * content-addressed caches.
 *
 * The service's central contract is "incremental == one-shot,
 * bitwise": a session fed one dispatch at a time and refreshed at
 * any arrival prefix must answer with exactly the database,
 * intervals, feature vectors, and selections a batch pipeline run
 * over the same prefix produces. These tests pin that equivalence
 * across schemes, feed granularities, refresh cadences, and pool
 * widths, plus the cache-sharing rules ("fully built => const,
 * shareable") under real concurrency — the `service` label puts the
 * whole file under TSan in the tsan preset.
 */

#include <gtest/gtest.h>

#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/pipeline.hh"
#include "gtpin/tools.hh"
#include "serve/service.hh"
#include "workloads/templates.hh"

namespace gt::serve
{
namespace
{

using core::Interval;
using core::IntervalScheme;
using core::TraceDatabase;

struct Inputs
{
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    std::vector<ocl::ApiCallRecord> calls;
};

/** Deterministic synthetic suite shaped like the profiled apps: a
 * dozen distinct kernels re-dispatched many times, small block
 * vectors, syncs every handful of kernels. */
Inputs
makeInputs(uint64_t n, uint64_t seed = 0x5eedf00d)
{
    Rng rng(seed);
    Inputs in;
    uint64_t idx = 0;
    for (uint64_t i = 0; i < n; ++i) {
        uint32_t kernel = (uint32_t)(rng.next() % 12);
        gtpin::DispatchProfile p;
        p.seq = i;
        p.kernelId = kernel;
        p.kernelName = "suite_kernel_" + std::to_string(kernel);
        p.globalWorkSize = 64 << (kernel % 4);
        p.argsHash = rng.next();
        size_t blocks = 2 + kernel % 4;
        p.blockCounts.resize(blocks);
        p.blockLens.resize(blocks);
        p.blockReadBytes.resize(blocks);
        p.blockWriteBytes.resize(blocks);
        for (size_t b = 0; b < blocks; ++b) {
            p.blockCounts[b] = rng.next() % 5000;
            p.blockLens[b] = 4 + (uint32_t)(rng.next() % 12);
            p.instrs += p.blockCounts[b] * p.blockLens[b];
            p.blockReadBytes[b] = (uint32_t)(rng.next() % 512);
            p.blockWriteBytes[b] = (uint32_t)(rng.next() % 512);
            p.bytesRead += p.blockCounts[b] * p.blockReadBytes[b];
            p.bytesWritten += p.blockCounts[b] * p.blockWriteBytes[b];
        }
        in.profiles.push_back(std::move(p));

        cfl::KernelTiming t;
        t.seq = i;
        t.kernelName = in.profiles.back().kernelName;
        t.seconds = (double)(rng.next() >> 11) * 0x1.0p-53 * 1e-3;
        in.timings.push_back(t);

        ocl::ApiCallRecord call;
        call.callIndex = idx++;
        call.id = ocl::ApiCallId::EnqueueNDRangeKernel;
        call.dispatchSeq = i;
        in.calls.push_back(call);
        if (rng.next() % 7 == 0) {
            ocl::ApiCallRecord sync;
            sync.callIndex = idx++;
            sync.id = ocl::ApiCallId::Finish;
            in.calls.push_back(sync);
        }
    }
    return in;
}

void
expectSameDb(const TraceDatabase &got, const TraceDatabase &want)
{
    ASSERT_EQ(got.numDispatches(), want.numDispatches());
    EXPECT_EQ(got.totalInstrs(), want.totalInstrs());
    EXPECT_EQ(got.totalSeconds(), want.totalSeconds());
    EXPECT_EQ(got.numSyncEpochs(), want.numSyncEpochs());
    for (uint64_t d = 0; d < got.numDispatches(); ++d) {
        EXPECT_EQ(got.profileAt(d).instrs, want.profileAt(d).instrs);
        EXPECT_EQ(got.seconds(d), want.seconds(d));
        EXPECT_EQ(got.syncEpoch(d), want.syncEpoch(d));
    }
}

void
expectSameIntervals(const std::vector<Interval> &got,
                    const std::vector<Interval> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].firstDispatch, want[i].firstDispatch);
        EXPECT_EQ(got[i].lastDispatch, want[i].lastDispatch);
        EXPECT_EQ(got[i].instrs, want[i].instrs);
        EXPECT_EQ(got[i].seconds, want[i].seconds);
    }
}

void
expectSameSelection(const core::SubsetSelection &got,
                    const core::SubsetSelection &want)
{
    expectSameIntervals(got.intervals, want.intervals);
    EXPECT_EQ(got.selected, want.selected);
    ASSERT_EQ(got.ratios.size(), want.ratios.size());
    for (size_t i = 0; i < got.ratios.size(); ++i)
        EXPECT_EQ(got.ratios[i], want.ratios[i]);
    EXPECT_EQ(got.selectedInstrs, want.selectedInstrs);
    EXPECT_EQ(got.totalInstrs, want.totalInstrs);
}

/** Feed @p in into @p consume(call) / @p row(d) in API-call order:
 * every call observed, each dispatch delivered right after its
 * Kernel call — the arrival order a draining replay produces. */
template <typename CallFn, typename RowFn>
void
streamInputs(const Inputs &in, CallFn &&consume, RowFn &&row)
{
    for (const ocl::ApiCallRecord &call : in.calls) {
        consume(call);
        if (call.id == ocl::ApiCallId::EnqueueNDRangeKernel)
            row(call.dispatchSeq);
    }
}

// ---------------------------------------------------------------
// Streaming TraceDatabase::Builder vs. batch build().

TEST(ServeBuilder, SealMatchesBatchBuildAtEveryChunk)
{
    const uint64_t n = 300;
    Inputs in = makeInputs(n);
    for (uint64_t chunk : {uint64_t(1), uint64_t(3), uint64_t(256)}) {
        TraceDatabase::Builder builder;
        uint64_t calls_seen = 0;
        streamInputs(
            in,
            [&](const ocl::ApiCallRecord &c) {
                builder.observeCall(c);
                ++calls_seen;
            },
            [&](uint64_t d) {
                builder.append(in.profiles[d], in.timings[d]);
                if ((d + 1) % chunk != 0 && d + 1 != n)
                    return;
                // Batch-join the same prefix: every call issued so
                // far, every dispatch drained so far.
                TraceDatabase want = TraceDatabase::build(
                    {in.profiles.begin(),
                     in.profiles.begin() + (long)(d + 1)},
                    {in.timings.begin(),
                     in.timings.begin() + (long)(d + 1)},
                    {in.calls.begin(),
                     in.calls.begin() + (long)calls_seen});
                expectSameDb(builder.seal(), want);
            });
    }
}

// ---------------------------------------------------------------
// Incremental interval division vs. buildIntervals(), 3 schemes x
// feed granularities {1, 3, 256}.

struct IntervalCase
{
    IntervalScheme scheme;
    uint64_t target;
};

class IncrementalIntervalTest
    : public ::testing::TestWithParam<IntervalCase>
{
};

TEST_P(IncrementalIntervalTest, AppendMatchesBatchAtEveryChunk)
{
    const IntervalCase param = GetParam();
    const uint64_t n = 300;
    Inputs in = makeInputs(n);

    for (uint64_t chunk : {uint64_t(1), uint64_t(3), uint64_t(256)}) {
        TraceDatabase::Builder builder;
        core::IncrementalIntervals inc(param.scheme, param.target);
        std::vector<Interval> prev;
        size_t prev_completed = 0;
        streamInputs(
            in,
            [&](const ocl::ApiCallRecord &c) {
                builder.observeCall(c);
            },
            [&](uint64_t d) {
                builder.append(in.profiles[d], in.timings[d]);
                inc.append(builder.syncEpoch(d),
                           in.profiles[d].instrs,
                           in.timings[d].seconds);
                if ((d + 1) % chunk != 0 && d + 1 != n)
                    return;
                std::vector<Interval> got = inc.snapshot();
                expectSameIntervals(
                    got, core::buildIntervals(builder.seal(),
                                              param.scheme,
                                              param.target));
                // Completed intervals are final: the previous
                // snapshot's completed prefix reappears unchanged.
                ASSERT_LE(inc.numCompleted(), got.size());
                ASSERT_LE(prev_completed, inc.numCompleted());
                for (size_t i = 0; i < prev_completed; ++i) {
                    EXPECT_EQ(prev[i].lastDispatch,
                              got[i].lastDispatch);
                    EXPECT_EQ(prev[i].instrs, got[i].instrs);
                }
                prev = std::move(got);
                prev_completed = inc.numCompleted();
            });
    }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndTargets, IncrementalIntervalTest,
    ::testing::Values(
        IntervalCase{IntervalScheme::SyncBounded, 0},
        IntervalCase{IntervalScheme::ApproxInstructions, 0},
        IntervalCase{IntervalScheme::ApproxInstructions, 40000},
        IntervalCase{IntervalScheme::SingleKernel, 0}));

// ---------------------------------------------------------------
// Incremental feature columns vs. batch construction.

TEST(ServeFeatures, StreamingCacheMatchesBatch)
{
    const uint64_t n = 200;
    Inputs in = makeInputs(n);
    TraceDatabase db = TraceDatabase::build(in.profiles, in.timings,
                                            in.calls);

    core::DispatchFeatureCache batch(db);
    core::DispatchFeatureCache inc;
    for (uint64_t d = 0; d < n; ++d) {
        inc.appendDispatch(db.profileAt(d));
        if (d % 17 == 0)
            inc.refreshColumns(); // must not disturb later appends
    }
    inc.refreshColumns();
    ASSERT_EQ(inc.uniqueKeys(), batch.uniqueKeys());

    auto intervals =
        core::buildIntervals(db, IntervalScheme::SyncBounded);
    core::simpoint::ProjectionTable table =
        core::simpoint::ProjectionTable::build(batch.uniqueKeys());
    core::DispatchFeatureCache::Scratch sa, sb;
    for (const Interval &iv : intervals) {
        for (int k = 0; k < core::numFeatureKinds; ++k) {
            core::FeatureKind kind = (core::FeatureKind)k;
            EXPECT_EQ(inc.extract(iv, kind, sa).values(),
                      batch.extract(iv, kind, sb).values());
            EXPECT_EQ(inc.projectInto(iv, kind, sa, table),
                      batch.projectInto(iv, kind, sb, table));
        }
    }
}

// ---------------------------------------------------------------
// Memoized refresh building blocks.

TEST(ServeSimpoint, ProjectionTableReuseIsBitwise)
{
    Rng rng(0xab1e);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 80; ++i)
        keys.push_back(rng.next());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::vector<uint64_t> prefix(keys.begin(),
                                 keys.begin() + keys.size() / 2);
    using core::simpoint::ProjectionTable;
    ProjectionTable fresh = ProjectionTable::build(keys);
    ProjectionTable reused =
        ProjectionTable::build(keys, ProjectionTable::build(prefix));
    ASSERT_EQ(reused.size(), fresh.size());
    for (uint64_t key : keys) {
        ASSERT_NE(reused.row(key), nullptr);
        EXPECT_EQ(*reused.row(key), *fresh.row(key));
    }
}

TEST(ServeSimpoint, ExtendUniqueIndexMatchesFreshBuild)
{
    using core::simpoint::projectedDims;
    // Heavily duplicated population: 9 distinct rows over 240
    // points, exactly the shape interval features produce.
    Rng rng(0xd0b1);
    std::vector<core::simpoint::Point> distinct(9);
    for (auto &p : distinct) {
        for (double &v : p)
            v = (double)(rng.next() % 1000) / 17.0;
    }
    const size_t n = 240;
    std::vector<double> flat(n * projectedDims);
    for (size_t i = 0; i < n; ++i) {
        const auto &p = distinct[rng.next() % distinct.size()];
        std::copy(p.begin(), p.end(),
                  flat.begin() + (long)(i * projectedDims));
    }

    using core::simpoint::UniqueIndex;
    for (size_t n_base : {size_t(0), size_t(1), size_t(100), n}) {
        UniqueIndex base =
            core::simpoint::buildUniqueIndex(flat.data(), n_base);
        UniqueIndex ext = core::simpoint::extendUniqueIndex(
            base, flat.data(), n_base, n);
        UniqueIndex want =
            core::simpoint::buildUniqueIndex(flat.data(), n);
        EXPECT_EQ(ext.uid, want.uid);
        EXPECT_EQ(ext.count, want.count);
        // rep may name a different member, but always one carrying
        // the identical row value.
        ASSERT_EQ(ext.rep.size(), want.rep.size());
        for (size_t g = 0; g < ext.rep.size(); ++g) {
            const double *a = flat.data() + ext.rep[g] * projectedDims;
            const double *b =
                flat.data() + want.rep[g] * projectedDims;
            for (int dim = 0; dim < projectedDims; ++dim)
                EXPECT_EQ(a[dim], b[dim]);
        }
    }
}

// ---------------------------------------------------------------
// Incremental selection refresh vs. one-shot selectSubset().

/** Refresh at every @p cadence dispatches and at the end; after each
 * refresh, every configured selection must equal a one-shot batch
 * selection over a database sealed at the same prefix. */
void
runRefreshCadence(const Inputs &in, uint64_t cadence,
                  sched::ThreadPool &pool)
{
    ServiceConfig cfg;
    WorkloadSession session("synthetic", cfg, pool);
    uint64_t fed = 0;
    streamInputs(
        in,
        [&](const ocl::ApiCallRecord &c) { session.observeCall(c); },
        [&](uint64_t d) {
            session.addDispatch(in.profiles[d], in.timings[d]);
            if (++fed % cadence != 0 && d + 1 != in.profiles.size())
                return;
            session.refresh();
            TraceDatabase db = session.sealDatabase();
            for (size_t c = 0; c < cfg.selections.size(); ++c) {
                const SelectionConfig &sc = cfg.selections[c];
                expectSameSelection(
                    session.selection(c),
                    core::selectSubset(db, sc.scheme, sc.feature,
                                       cfg.cluster,
                                       cfg.targetInstrs));
            }
        });
    SessionStats stats = session.stats();
    EXPECT_EQ(stats.dispatches, in.profiles.size());
    EXPECT_GT(stats.reclustered, 0u);
}

TEST(ServeSession, RefreshMatchesOneShotAtEveryCadence)
{
    Inputs in = makeInputs(240);
    sched::ThreadPool pool(1);
    for (uint64_t cadence : {uint64_t(61), uint64_t(240)})
        runRefreshCadence(in, cadence, pool);
}

TEST(ServeSession, RefreshIsPoolWidthInvariant)
{
    Inputs in = makeInputs(160);
    ServiceConfig cfg;
    std::vector<core::SubsetSelection> want;
    for (unsigned width : {1u, 4u}) {
        sched::ThreadPool pool(width);
        WorkloadSession session("synthetic", cfg, pool);
        streamInputs(in,
                     [&](const ocl::ApiCallRecord &c) {
                         session.observeCall(c);
                     },
                     [&](uint64_t d) {
                         session.addDispatch(in.profiles[d],
                                             in.timings[d]);
                     });
        session.refresh();
        for (size_t c = 0; c < cfg.selections.size(); ++c) {
            if (width == 1)
                want.push_back(session.selection(c));
            else
                expectSameSelection(session.selection(c), want[c]);
        }
    }
}

TEST(ServeSession, MemoizedRefreshSkipsUnchangedConfigs)
{
    Inputs in = makeInputs(120);
    sched::ThreadPool pool(1);
    ServiceConfig cfg;
    WorkloadSession session("synthetic", cfg, pool);
    streamInputs(in,
                 [&](const ocl::ApiCallRecord &c) {
                     session.observeCall(c);
                 },
                 [&](uint64_t d) {
                     session.addDispatch(in.profiles[d],
                                         in.timings[d]);
                 });
    session.refresh();
    SessionStats after_first = session.stats();
    EXPECT_EQ(after_first.reclustered, cfg.selections.size());
    EXPECT_EQ(after_first.reusedSelections, 0u);

    // No new dispatches: the second refresh answers every config
    // from the memo, and the selections are the same objects.
    std::vector<core::SubsetSelection> before;
    for (size_t c = 0; c < cfg.selections.size(); ++c)
        before.push_back(session.selection(c));
    session.refresh();
    SessionStats after_second = session.stats();
    EXPECT_EQ(after_second.reclustered, cfg.selections.size());
    EXPECT_EQ(after_second.reusedSelections, cfg.selections.size());
    for (size_t c = 0; c < cfg.selections.size(); ++c)
        expectSameSelection(session.selection(c), before[c]);
}

// ---------------------------------------------------------------
// The full service on a real recorded application.

const core::ProfiledApp &
gaussianApp()
{
    static const core::ProfiledApp app = core::profileApp(
        *workloads::findWorkload("cb-gaussian-image"));
    return app;
}

TEST(ServeService, ReplayedSessionMatchesOneShot)
{
    const core::ProfiledApp &app = gaussianApp();
    ProfilingService service;
    auto tenant = service.openTenant("t0");
    auto wl = service.submit(tenant, app.name, app.recording);
    service.drain();
    service.refreshAll();

    WorkloadSession &session = service.session(tenant, wl);
    EXPECT_EQ(session.numDispatches(), app.db.numDispatches());
    TraceDatabase db = session.sealDatabase();
    expectSameDb(db, app.db);

    const ServiceConfig &cfg = service.config();
    for (size_t c = 0; c < cfg.selections.size(); ++c) {
        const SelectionConfig &sc = cfg.selections[c];
        expectSameSelection(
            session.selection(c),
            core::selectSubset(db, sc.scheme, sc.feature,
                               cfg.cluster, cfg.targetInstrs));
    }
}

TEST(ServeService, IdenticalRecordingsShareReplayArtifacts)
{
    const core::ProfiledApp &app = gaussianApp();
    ProfilingService service;
    auto t0 = service.openTenant("t0");
    auto t1 = service.openTenant("t1");
    auto w0 = service.submit(t0, app.name, app.recording);
    auto w1 = service.submit(t1, app.name, app.recording);
    service.drain();
    service.refreshAll();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tenants, 2u);
    EXPECT_EQ(stats.workloads, 2u);
    EXPECT_EQ(stats.replays, 1u);
    EXPECT_EQ(stats.artifactHits, 1u);
    EXPECT_GT(stats.planCache.builds, 0u);

    // The artifact-fed session is indistinguishable from the
    // replayed one.
    WorkloadSession &a = service.session(t0, w0);
    WorkloadSession &b = service.session(t1, w1);
    expectSameDb(a.sealDatabase(), b.sealDatabase());
    for (size_t c = 0; c < service.config().selections.size(); ++c)
        expectSameSelection(a.selection(c), b.selection(c));
}

TEST(ServeService, ConcurrentTenantsAgreeBitwise)
{
    const core::ProfiledApp &app = gaussianApp();
    sched::ThreadPool pool(4);
    ServiceConfig cfg;
    cfg.pool = &pool;
    ProfilingService service(cfg);

    const unsigned tenants = 6;
    std::vector<ProfilingService::TenantId> ids;
    for (unsigned t = 0; t < tenants; ++t) {
        ids.push_back(
            service.openTenant("t" + std::to_string(t)));
        service.submit(ids.back(), app.name, app.recording);
    }
    service.drain();
    service.refreshAll();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.replays + stats.artifactHits, (uint64_t)tenants);
    EXPECT_GE(stats.artifactHits, 1u);

    WorkloadSession &first = service.session(ids[0], 0);
    for (unsigned t = 1; t < tenants; ++t) {
        WorkloadSession &other = service.session(ids[t], 0);
        EXPECT_EQ(other.numDispatches(), first.numDispatches());
        for (size_t c = 0; c < cfg.selections.size(); ++c)
            expectSameSelection(other.selection(c),
                                first.selection(c));
    }
}

// ---------------------------------------------------------------
// Shared content-addressed caches.

TEST(ServeCaches, PlanCacheSharesAcrossDrivers)
{
    const core::ProfiledApp &app = gaussianApp();
    gpu::SharedPlanCache plans(gpu::DeviceConfig::hd4000());
    gpu::SharedCheckpointCache ckpts;

    auto replayWithSharedCaches = [&]() {
        workloads::TemplateJit jit;
        ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, {});
        driver.setSharedCaches(&plans, &ckpts);
        gtpin::KernelProfileTool profile_tool;
        gtpin::GtPin pin;
        pin.addTool(&profile_tool);
        pin.attach(driver);
        ocl::ClRuntime runtime(driver);
        cfl::replay(app.recording, runtime);
        pin.detach();
        return profile_tool.takeProfiles();
    };

    auto first = replayWithSharedCaches();
    gpu::SharedCacheStats cold = plans.stats();
    EXPECT_GT(cold.builds, 0u);
    EXPECT_GT(cold.misses, 0u);

    auto second = replayWithSharedCaches();
    gpu::SharedCacheStats warm = plans.stats();
    // Same kernels: the second driver builds nothing and hits for
    // every plan the first one published.
    EXPECT_EQ(warm.builds, cold.builds);
    EXPECT_GT(warm.hits, cold.hits);

    // Adopted plans change nothing observable about execution.
    ASSERT_EQ(first.size(), second.size());
    for (size_t d = 0; d < first.size(); ++d) {
        EXPECT_EQ(first[d].instrs, second[d].instrs);
        EXPECT_EQ(first[d].blockCounts, second[d].blockCounts);
        EXPECT_EQ(first[d].bytesRead, second[d].bytesRead);
        EXPECT_EQ(first[d].bytesWritten, second[d].bytesWritten);
    }
}

TEST(ServeCaches, PlanCacheConcurrentLookupsAreExact)
{
    gpu::SharedPlanCache cache(gpu::DeviceConfig::hd4000());
    const unsigned threads = 4;
    const uint64_t keys = 16, iters = 400;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&cache, t]() {
            Rng rng(0xc0ffee + t);
            for (uint64_t i = 0; i < iters; ++i) {
                uint64_t key = rng.next() % keys;
                auto plan = cache.find(key);
                if (!plan) {
                    auto built = std::make_shared<gpu::ExecPlan>();
                    built->numInstrs = key;
                    plan = cache.insert(key, std::move(built));
                }
                // Never a torn or foreign artifact.
                ASSERT_EQ(plan->numInstrs, key);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    gpu::SharedCacheStats stats = cache.stats();
    EXPECT_EQ(cache.size(), keys);
    // First insert wins exactly once per key...
    EXPECT_EQ(stats.builds, keys);
    // ...and every lookup is accounted for.
    EXPECT_EQ(stats.hits + stats.misses, threads * iters);
}

// ---------------------------------------------------------------
// Session eviction, rehydration, and budget enforcement.

/** Per-test archive directory under the gtest temp root, unique per
 * process so stale catalogs from earlier runs never leak in. */
std::string
evictDir(const std::string &tag)
{
    return ::testing::TempDir() + "gt-serve-test-" +
           std::to_string((long)::getpid()) + "-" + tag;
}

TEST(ServeEviction, EvictRehydrateMatchesNeverEvicted)
{
    // 250 = three evictions at 80/160/240, each followed by late
    // dispatches that force a rehydrate mid-stream.
    Inputs in = makeInputs(250);
    sched::ThreadPool pool(1);
    ServiceConfig cfg;
    WorkloadSession session("synthetic", cfg, pool);
    WorkloadSession oracle("synthetic", cfg, pool);
    SessionArchive archive(evictDir("rehydrate"));
    std::string path = archive.pathFor(0, 0, "synthetic");

    uint64_t fed = 0;
    uint64_t resident_before_evict = 0;
    streamInputs(
        in,
        [&](const ocl::ApiCallRecord &c) {
            session.observeCall(c);
            oracle.observeCall(c);
        },
        [&](uint64_t d) {
            session.addDispatch(in.profiles[d], in.timings[d]);
            oracle.addDispatch(in.profiles[d], in.timings[d]);
            if (++fed % 80 != 0)
                return;
            resident_before_evict = session.memoryBytes();
            session.evict(path);
            archive.record("synthetic", path, fed);
            EXPECT_TRUE(session.isEvicted());
            // Eviction reclaims the builder/feature/interval state.
            EXPECT_LT(session.memoryBytes(),
                      resident_before_evict / 4);
        });

    // The late dispatches after the last eviction rehydrated.
    EXPECT_FALSE(session.isEvicted());
    SessionStats stats = session.stats();
    EXPECT_EQ(stats.evictions, 3u);
    EXPECT_EQ(stats.rehydrations, 3u);

    session.refresh();
    oracle.refresh();
    TraceDatabase want = oracle.sealDatabase();
    expectSameDb(session.sealDatabase(), want);
    for (size_t c = 0; c < cfg.selections.size(); ++c)
        expectSameSelection(session.selection(c),
                            oracle.selection(c));

    // Sealing straight off the archive (no rehydrate) is the same
    // database bitwise.
    session.evict(path);
    ASSERT_TRUE(session.isEvicted());
    expectSameDb(session.sealDatabase(), want);
    EXPECT_TRUE(session.isEvicted());
    EXPECT_EQ(session.stats().rehydrations, 3u);
}

TEST(ServeEviction, EvictedSessionAnswersFromMemo)
{
    Inputs in = makeInputs(120);
    sched::ThreadPool pool(1);
    ServiceConfig cfg;
    WorkloadSession session("synthetic", cfg, pool);
    streamInputs(in,
                 [&](const ocl::ApiCallRecord &c) {
                     session.observeCall(c);
                 },
                 [&](uint64_t d) {
                     session.addDispatch(in.profiles[d],
                                         in.timings[d]);
                 });
    session.refresh();
    std::vector<core::SubsetSelection> before;
    for (size_t c = 0; c < cfg.selections.size(); ++c)
        before.push_back(session.selection(c));

    SessionArchive archive(evictDir("memo"));
    std::string path = archive.pathFor(0, 0, "synthetic");
    session.evict(path);
    ASSERT_TRUE(session.isEvicted());
    uint64_t reused_at_evict = session.stats().reusedSelections;

    // No new dispatches: refresh() and selection() answer from the
    // memo without touching the archive.
    session.refresh();
    EXPECT_TRUE(session.isEvicted());
    SessionStats stats = session.stats();
    EXPECT_EQ(stats.rehydrations, 0u);
    EXPECT_EQ(stats.reusedSelections,
              reused_at_evict + cfg.selections.size());
    for (size_t c = 0; c < cfg.selections.size(); ++c)
        expectSameSelection(session.selection(c), before[c]);

    // Eviction is idempotent.
    session.evict(path);
    EXPECT_EQ(session.stats().evictions, 1u);
    EXPECT_EQ(session.numDispatches(), in.profiles.size());
}

TEST(ServeEviction, ServiceThresholdSweepIsBitwise)
{
    const core::ProfiledApp &app = gaussianApp();
    struct Budget
    {
        const char *tag;
        size_t sessions;
        uint64_t bytes;
        bool onDrain;
        bool evicts;
    };
    const Budget budgets[] = {
        {"unbounded", SIZE_MAX, UINT64_MAX, false, false},
        {"one-session", 1, UINT64_MAX, false, true},
        {"zero-bytes", SIZE_MAX, 0, false, true},
        {"on-drain", SIZE_MAX, UINT64_MAX, true, true},
    };
    const unsigned tenants = 3;

    // Selections must be bitwise identical no matter which budget
    // forced evictions along the way.
    std::vector<std::vector<core::SubsetSelection>> want;
    for (const Budget &budget : budgets) {
        ServiceConfig cfg;
        cfg.maxResidentSessions = budget.sessions;
        cfg.maxResidentBytes = budget.bytes;
        cfg.evictOnDrain = budget.onDrain;
        cfg.archiveDir = evictDir(budget.tag);
        ProfilingService service(cfg);

        std::vector<ProfilingService::TenantId> ids;
        for (unsigned t = 0; t < tenants; ++t) {
            ids.push_back(
                service.openTenant("t" + std::to_string(t)));
            service.submit(ids.back(), app.name, app.recording);
        }
        service.drain();
        service.refreshAll();

        ServiceStats stats = service.stats();
        if (budget.evicts) {
            EXPECT_GT(stats.sessions.evictions, 0u) << budget.tag;
            EXPECT_FALSE(
                SessionArchive::readCatalog(cfg.archiveDir).empty())
                << budget.tag;
        } else {
            EXPECT_EQ(stats.sessions.evictions, 0u) << budget.tag;
        }

        for (unsigned t = 0; t < tenants; ++t) {
            WorkloadSession &session = service.session(ids[t], 0);
            std::vector<core::SubsetSelection> got;
            for (size_t c = 0; c < cfg.selections.size(); ++c)
                got.push_back(session.selection(c));
            if (want.size() <= t) {
                want.push_back(std::move(got));
                continue;
            }
            for (size_t c = 0; c < got.size(); ++c)
                expectSameSelection(got[c], want[t][c]);
        }
    }
}

TEST(ServeEviction, ConcurrentSubmitWhileEvicting)
{
    const core::ProfiledApp &app = gaussianApp();
    sched::ThreadPool pool(4);
    ServiceConfig cfg;
    cfg.pool = &pool;
    cfg.evictOnDrain = true;
    cfg.archiveDir = evictDir("concurrent");
    ProfilingService service(cfg);

    // Warm submissions feed inline on the submitting thread while
    // earlier drains evict — the TSan-covered interleaving.
    const unsigned threads = 4;
    std::vector<ProfilingService::TenantId> ids;
    for (unsigned t = 0; t < threads; ++t)
        ids.push_back(service.openTenant("t" + std::to_string(t)));
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&service, &app, &ids, t]() {
            service.submit(ids[t], app.name, app.recording);
            service.submit(ids[t], app.name, app.recording);
        });
    }
    for (std::thread &w : workers)
        w.join();
    service.drain();
    service.refreshAll();

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.workloads, threads * 2u);
    EXPECT_EQ(stats.replays + stats.artifactHits, threads * 2u);
    EXPECT_GT(stats.sessions.evictions, 0u);

    WorkloadSession &first = service.session(ids[0], 0);
    for (unsigned t = 0; t < threads; ++t) {
        for (ProfilingService::WorkloadId w = 0; w < 2; ++w) {
            WorkloadSession &other = service.session(ids[t], w);
            EXPECT_EQ(other.numDispatches(),
                      first.numDispatches());
            for (size_t c = 0; c < cfg.selections.size(); ++c)
                expectSameSelection(other.selection(c),
                                    first.selection(c));
        }
    }
}

TEST(ServeEviction, FootprintStaysBoundedUnderByteBudget)
{
    const core::ProfiledApp &app = gaussianApp();

    // Measure one resident session to size the budget.
    uint64_t one_session = 0;
    {
        ProfilingService probe;
        auto tenant = probe.openTenant("probe");
        probe.submit(tenant, app.name, app.recording);
        probe.drain();
        probe.refreshAll();
        one_session = probe.session(tenant, 0).memoryBytes();
        ASSERT_GT(one_session, 0u);

        ServiceFootprint fp = probe.memoryFootprint();
        EXPECT_GE(fp.sessionBytes, one_session);
        EXPECT_GT(fp.memoBytes, 0u); // refreshed selections
        EXPECT_EQ(fp.evictedResidueBytes, 0u); // nothing evicted
        EXPECT_EQ(fp.totalBytes,
                  fp.sessionBytes + fp.evictedResidueBytes +
                      fp.memoBytes + fp.planCacheBytes +
                      fp.checkpointCacheBytes + fp.artifactBytes +
                      fp.traceCacheBytes);
        EXPECT_GT(fp.planCacheBytes, 0u);
        EXPECT_GT(fp.artifactBytes, 0u);
    }

    // A ~1.5-session budget: resident session bytes stay bounded no
    // matter how many workloads accumulate (evicted sessions keep
    // only their tiny memo/walk residue, allow one session of
    // slack for it and the in-flight feed).
    ServiceConfig cfg;
    cfg.maxResidentBytes = one_session + one_session / 2;
    cfg.archiveDir = evictDir("budget");
    ProfilingService service(cfg);
    auto tenant = service.openTenant("t0");
    for (unsigned i = 0; i < 6; ++i) {
        service.submit(tenant, app.name, app.recording);
        service.drain();
        ServiceFootprint fp = service.memoryFootprint();
        EXPECT_LE(fp.sessionBytes,
                  cfg.maxResidentBytes + one_session);
    }
    service.refreshAll();
    EXPECT_GT(service.stats().sessions.evictions, 0u);
    ServiceFootprint after = service.memoryFootprint();
    EXPECT_GT(after.evictedResidueBytes, 0u);
    EXPECT_LE(after.sessionBytes, cfg.maxResidentBytes + one_session);

    WorkloadSession &first = service.session(tenant, 0);
    for (ProfilingService::WorkloadId w = 1; w < 6; ++w) {
        WorkloadSession &other = service.session(tenant, w);
        for (size_t c = 0; c < cfg.selections.size(); ++c)
            expectSameSelection(other.selection(c),
                                first.selection(c));
    }
}

TEST(ServeArchive, CatalogRoundTripsAcrossInstances)
{
    std::string dir = evictDir("catalog");
    SessionArchive archive(dir);
    EXPECT_TRUE(archive.entries().empty());

    std::string p0 = archive.pathFor(0, 0, "alpha beta/1");
    std::string p1 = archive.pathFor(1, 2, "gamma");
    EXPECT_NE(p0, p1);
    archive.record("alpha beta/1", p0, 10);
    archive.record("gamma", p1, 20);
    archive.record("alpha beta/1", p0, 30); // update, not duplicate

    std::vector<SessionArchive::Entry> rows = archive.entries();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].workload, "alpha beta/1");
    EXPECT_EQ(rows[0].dispatches, 30u);
    EXPECT_EQ(rows[1].workload, "gamma");
    EXPECT_EQ(rows[1].dispatches, 20u);

    // A second instance over the same directory reads the catalog
    // back field for field.
    SessionArchive reopened(dir);
    std::vector<SessionArchive::Entry> again = reopened.entries();
    ASSERT_EQ(again.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(again[i].file, rows[i].file);
        EXPECT_EQ(again[i].dispatches, rows[i].dispatches);
        EXPECT_EQ(again[i].workload, rows[i].workload);
    }
    EXPECT_EQ(SessionArchive::readCatalog(dir).size(), rows.size());
}

TEST(ServeCaches, CheckpointCacheConcurrentLookupsAreExact)
{
    gpu::SharedCheckpointCache cache;
    isa::KernelBinary binary;
    binary.name = "ckpt_test_kernel";

    const unsigned threads = 4;
    const uint64_t keys = 8, iters = 200;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&]() {
            for (uint64_t i = 0; i < iters; ++i) {
                gpu::SharedCheckpointCache::Key key;
                key.binaryHash = 0x1234;
                key.globalSize = 64 << (i % keys);
                key.simdWidth = 16;
                auto ckpt = cache.find(key);
                if (!ckpt) {
                    gpu::DetailedCheckpoint built;
                    built.numThreads = key.globalSize / 16;
                    built.truncation = 1.0;
                    ckpt = cache.insert(key, built, binary);
                }
                ASSERT_EQ(ckpt->numThreads, key.globalSize / 16);
                // The stored copy points at the cache's interned
                // clone, never at tenant-owned state.
                ASSERT_NE(ckpt->binary, nullptr);
                ASSERT_NE(ckpt->binary, &binary);
                EXPECT_EQ(ckpt->binary->name, binary.name);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();

    gpu::SharedCacheStats stats = cache.stats();
    EXPECT_EQ(cache.size(), keys);
    EXPECT_EQ(stats.builds, keys);
    EXPECT_EQ(stats.hits + stats.misses, threads * iters);
}

} // anonymous namespace
} // namespace gt::serve
