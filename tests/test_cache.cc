/**
 * @file
 * Cache-model and cache-sim-tool tests: the set-associative LRU
 * model behind GT-Pin's "cache simulation through the use of memory
 * traces" capability.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gtpin/cache_sim.hh"
#include "ocl/runtime.hh"
#include "workloads/templates.hh"

namespace gt::gtpin
{
namespace
{

TEST(CacheModel, ColdMissThenHit)
{
    CacheModel cache(4096, 4, 64);
    EXPECT_FALSE(cache.access(0x1000, 4, false));
    EXPECT_TRUE(cache.access(0x1000, 4, false));
    EXPECT_TRUE(cache.access(0x1020, 4, false)); // same line
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(CacheModel, LruEvictionOrder)
{
    // Direct-mapped-per-set: 2 ways, force 3 conflicting lines.
    CacheModel cache(2 * 64 * 4, 2, 64); // 4 sets, 2 ways
    uint64_t set_stride = 4 * 64;        // same set, new tag
    cache.access(0 * set_stride, 4, false);
    cache.access(1 * set_stride, 4, false);
    // Touch line 0 so line 1 is LRU.
    cache.access(0 * set_stride, 4, false);
    // Insert a third line: must evict line 1.
    cache.access(2 * set_stride, 4, false);
    EXPECT_TRUE(cache.access(0 * set_stride, 4, false));
    EXPECT_FALSE(cache.access(1 * set_stride, 4, false));
}

TEST(CacheModel, WritebacksOnDirtyEviction)
{
    CacheModel cache(2 * 64 * 1, 1, 64); // 2 sets, direct mapped
    cache.access(0, 4, true);            // dirty
    cache.access(2 * 64, 4, false);      // evicts dirty line
    EXPECT_EQ(cache.writebacks(), 1u);
    cache.access(4 * 64, 4, false);      // evicts clean line
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(CacheModel, StraddlingAccessTouchesBothLines)
{
    CacheModel cache(4096, 4, 64);
    cache.access(60, 8, false); // spans lines 0 and 1
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_TRUE(cache.access(64, 4, false));
}

TEST(CacheModel, HitRateAndReset)
{
    CacheModel cache(4096, 4, 64);
    cache.access(0, 4, false);
    cache.access(0, 4, false);
    cache.access(0, 4, false);
    cache.access(0, 4, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.0);
    EXPECT_FALSE(cache.access(0, 4, false));
}

TEST(CacheModel, CapacitySweepImprovesHitRate)
{
    // A classic working-set property: a cache that fits the set has
    // a far better hit rate than one that does not.
    auto run = [](uint64_t cache_bytes) {
        CacheModel cache(cache_bytes, 8, 64);
        for (int pass = 0; pass < 4; ++pass) {
            for (uint64_t addr = 0; addr < 64 * 1024; addr += 64)
                cache.access(addr, 4, false);
        }
        return cache.hitRate();
    };
    double small = run(8 * 1024);
    double large = run(256 * 1024);
    EXPECT_LT(small, 0.1);
    EXPECT_GT(large, 0.7);
}

TEST(CacheModel, InvalidGeometryPanics)
{
    setLogQuiet(true);
    EXPECT_THROW(CacheModel(100, 4, 63), PanicError);  // line !pow2
    EXPECT_THROW(CacheModel(64, 4, 64), PanicError);   // < 1 set
    EXPECT_THROW(CacheModel(4096, 0, 64), PanicError); // 0 ways
    setLogQuiet(false);
}

TEST(CacheSimToolTest, DrivenByDeviceMemoryTrace)
{
    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);

    CacheSimTool tool(64 * 1024, 16, 64);
    GtPin pin;
    pin.addTool(&tool);
    pin.attach(driver);

    ocl::ClRuntime rt(driver);
    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    isa::KernelSource src;
    src.name = "cachetest";
    src.templateName = "stream";
    src.params = {16, 0x3ff, 16};
    ocl::Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    ocl::Kernel k = rt.createKernel(prog, "cachetest");
    ocl::Mem buf = rt.createBuffer(ctx, 1 << 16);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 0u);
    rt.setKernelArg(k, 3, 0u);
    rt.enqueueNDRangeKernel(q, k, 512);
    rt.finish(q);
    pin.detach();

    // The tool must have seen real traffic, and the streaming kernel
    // revisits lines (per-lane 4B accesses share 64B lines).
    EXPECT_GT(tool.cache().accesses(), 0u);
    EXPECT_GT(tool.cache().hitRate(), 0.5);
}

TEST(CacheSimToolTest, ForcesFullExecution)
{
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
    CacheSimTool tool;
    EXPECT_TRUE(tool.needsAddresses());
    GtPin pin;
    pin.addTool(&tool);
    pin.attach(driver);
    // Attaching a trace-needing tool switches the driver to Full
    // per-lane execution; we can only observe this indirectly: the
    // tool receives accesses (checked above). Here we just confirm
    // attach/detach is clean.
    pin.detach();
}

} // anonymous namespace
} // namespace gt::gtpin
