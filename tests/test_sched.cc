/**
 * @file
 * Scheduler tests: pool lifecycle, exception propagation,
 * work-stealing under oversubscription, TaskGraph dependency /
 * cancellation semantics — and the library-level determinism
 * guarantee: profileSuite() and exploreConfigs() are bit-identical
 * at every thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "common/logging.hh"
#include "core/pipeline.hh"
#include "sched/task_graph.hh"
#include "sched/thread_pool.hh"

namespace gt::sched
{
namespace
{

TEST(ThreadPool, DefaultThreadCountHonorsEnv)
{
    ::setenv("GT_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    setLogQuiet(true);
    ::setenv("GT_THREADS", "zero", 1);
    EXPECT_GE(defaultThreadCount(), 1u); // falls back, never 0
    ::setenv("GT_THREADS", "-2", 1);
    EXPECT_GE(defaultThreadCount(), 1u);
    setLogQuiet(false);
    ::unsetenv("GT_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ThreadPool, IdleConstructDestruct)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
    }
}

TEST(ThreadPool, SubmitReturnsValues)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 32; ++i)
            futures.push_back(pool.submit([i] { return i * i; }));
        for (int i = 0; i < 32; ++i)
            EXPECT_EQ(futures[(size_t)i].get(), i * i);
    }
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ran.fetch_add(1);
            });
        }
    } // ~ThreadPool joins only after every task ran
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::future<void> f =
            pool.submit([] { throw std::runtime_error("boom"); });
        EXPECT_THROW(f.get(), std::runtime_error);
    }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (unsigned threads : {1u, 3u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(10'000);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(hits.size(),
                         [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForPropagatesLowestChunkException)
{
    ThreadPool pool(4);
    // Chunks of one index; indices 300 and 700 both throw. The
    // lowest-indexed chunk's exception must win deterministically.
    try {
        pool.parallelFor(
            1000,
            [](size_t i) {
                if (i == 300 || i == 700)
                    throw std::runtime_error(std::to_string(i));
            },
            1);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "300");
    }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2); // fewer workers than nested loops in flight
    std::atomic<int> total{0};
    pool.parallelFor(
        8,
        [&](size_t) {
            pool.parallelFor(
                64, [&](size_t) { total.fetch_add(1); }, 4);
        },
        1);
    EXPECT_EQ(total.load(), 8 * 64);
}

TEST(ThreadPool, ParallelReduceIsThreadCountInvariant)
{
    // A sum whose FP result depends on the combination tree: the
    // fixed grain must make it identical for every pool size.
    std::vector<double> values(5000);
    for (size_t i = 0; i < values.size(); ++i)
        values[i] = 1.0 / (double)(i + 1);

    auto sum_with = [&](unsigned threads) {
        ThreadPool pool(threads);
        return pool.parallelReduce<double>(
            values.size(), 256, 0.0,
            [&](size_t begin, size_t end) {
                double part = 0.0;
                for (size_t i = begin; i < end; ++i)
                    part += values[i];
                return part;
            },
            [](double &&a, double &&b) { return a + b; });
    };

    double serial = sum_with(1);
    EXPECT_EQ(serial, sum_with(2));
    EXPECT_EQ(serial, sum_with(5));
    EXPECT_EQ(serial, sum_with(16));
}

TEST(ThreadPool, StealsFromABusyWorker)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    // The spawner enqueues its children onto its own worker deque;
    // the only way the other three workers can participate is by
    // stealing.
    pool.submit([&] {
          for (int i = 0; i < 128; ++i) {
              pool.submit([&ran] {
                  std::this_thread::sleep_for(
                      std::chrono::microseconds(200));
                  ran.fetch_add(1);
              });
          }
      }).get();
    // Wait for the children (submit futures were discarded on
    // purpose: the spawner must not block on them).
    for (int spins = 0; ran.load() < 128 && spins < 10'000; ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(ran.load(), 128);
    EXPECT_GT(pool.stealCount(), 0u);
}

TEST(ThreadPool, SurvivesOversubscription)
{
    unsigned hw = std::thread::hardware_concurrency();
    ThreadPool pool(2 * std::max(1u, hw) + 4);
    std::atomic<int> ran{0};
    pool.parallelFor(
        2000,
        [&](size_t) {
            std::this_thread::yield();
            ran.fetch_add(1);
        },
        1);
    EXPECT_EQ(ran.load(), 2000);
}

TEST(PoolHandle, AcquireBlocksAtWidthAndReleases)
{
    ThreadPool pool(2);
    PoolHandle handle(pool, 1);
    EXPECT_EQ(handle.width(), 1u);
    EXPECT_EQ(handle.active(), 0u);
    {
        PoolHandle::Slot slot = handle.acquire();
        EXPECT_EQ(handle.active(), 1u);
    }
    EXPECT_EQ(handle.active(), 0u);

    // A contending thread is admitted once the holder releases.
    std::atomic<bool> admitted{false};
    PoolHandle::Slot held = handle.acquire();
    std::thread waiter([&]() {
        PoolHandle::Slot slot = handle.acquire();
        admitted.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(admitted.load());
    { PoolHandle::Slot drop = std::move(held); }
    waiter.join();
    EXPECT_TRUE(admitted.load());
    EXPECT_EQ(handle.active(), 0u);
}

TEST(PoolHandle, AcquireReentrantDoesNotSelfDeadlock)
{
    // Width 1: a thread that already holds the handle's only slot
    // must get an empty slot back instead of waiting on itself
    // (the service's rehydrate-inside-replay path).
    ThreadPool pool(1);
    PoolHandle handle(pool, 1);
    {
        PoolHandle::Slot outer = handle.acquireReentrant();
        EXPECT_EQ(handle.active(), 1u);
        {
            PoolHandle::Slot inner = handle.acquireReentrant();
            PoolHandle::Slot deeper = handle.acquireReentrant();
            EXPECT_EQ(handle.active(), 1u);
        }
        // Releasing the empty nested slots must not release the
        // real admission.
        EXPECT_EQ(handle.active(), 1u);
    }
    EXPECT_EQ(handle.active(), 0u);

    // With no slot held, acquireReentrant admits like acquire().
    PoolHandle::Slot fresh = handle.acquireReentrant();
    EXPECT_EQ(handle.active(), 1u);
}

TEST(TaskGraph, RespectsDependencyEdges)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::vector<int> order;
    auto record = [&](int id) {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(id);
    };

    TaskGraph graph;
    auto a = graph.add([&] { record(0); });
    auto b = graph.add([&] { record(1); }, {a});
    auto c = graph.add([&] { record(2); }, {a, b});
    graph.add([&] { record(3); }, {c});
    graph.run(pool);

    ASSERT_EQ(order.size(), 4u);
    auto pos = [&](int id) {
        return std::find(order.begin(), order.end(), id) -
            order.begin();
    };
    EXPECT_LT(pos(0), pos(1));
    EXPECT_LT(pos(1), pos(2));
    EXPECT_LT(pos(2), pos(3));
}

TEST(TaskGraph, DiamondRunsEveryTaskOnce)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<int> runs{0};
        TaskGraph graph;
        auto root = graph.add([&] { runs.fetch_add(1); });
        auto left = graph.add([&] { runs.fetch_add(1); }, {root});
        auto right = graph.add([&] { runs.fetch_add(1); }, {root});
        graph.add([&] { runs.fetch_add(1); }, {left, right});
        graph.run(pool);
        EXPECT_EQ(runs.load(), 4);
    }
}

TEST(TaskGraph, FailureCancelsSuccessorsAndRethrows)
{
    setLogQuiet(true);
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<bool> successor_ran{false};
        std::atomic<bool> independent_ran{false};
        TaskGraph graph;
        auto a = graph.add(
            [] { throw std::runtime_error("task a failed"); });
        graph.add([&] { successor_ran.store(true); }, {a});
        graph.add([&] { independent_ran.store(true); });
        EXPECT_THROW(graph.run(pool), std::runtime_error);
        EXPECT_FALSE(successor_ran.load());
        EXPECT_TRUE(independent_ran.load());
    }
    setLogQuiet(false);
}

// --- Library-level determinism across thread counts ---------------

void
expectIdenticalExplorations(const core::Exploration &a,
                            const core::Exploration &b)
{
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
        const core::ConfigResult &ra = a.results[i];
        const core::ConfigResult &rb = b.results[i];
        EXPECT_EQ(ra.selection.scheme, rb.selection.scheme);
        EXPECT_EQ(ra.selection.feature, rb.selection.feature);
        EXPECT_EQ(ra.selection.selected, rb.selection.selected);
        EXPECT_EQ(ra.selection.ratios, rb.selection.ratios); // bitwise
        EXPECT_EQ(ra.selection.selectedInstrs,
                  rb.selection.selectedInstrs);
        EXPECT_EQ(ra.selection.totalInstrs, rb.selection.totalInstrs);
        EXPECT_EQ(ra.errorPct, rb.errorPct); // bitwise
    }
}

TEST(Determinism, ExploreConfigsIsThreadCountInvariant)
{
    setLogQuiet(true);
    core::ProfiledApp app = core::profileApp(
        *workloads::findWorkload("cb-gaussian-image"));

    auto explore_with = [&](unsigned threads) {
        ThreadPool pool(threads);
        core::simpoint::ClusterOptions options;
        options.pool = &pool;
        return core::exploreConfigs(app.db, options);
    };

    core::Exploration serial = explore_with(1);
    core::Exploration four = explore_with(4);
    core::Exploration hw = explore_with(
        std::max(1u, std::thread::hardware_concurrency()));
    expectIdenticalExplorations(serial, four);
    expectIdenticalExplorations(serial, hw);
    setLogQuiet(false);
}

TEST(Determinism, ProfileSuiteMatchesSerialProfileApp)
{
    setLogQuiet(true);
    std::vector<const workloads::Workload *> apps{
        workloads::findWorkload("cb-gaussian-image"),
        workloads::findWorkload("cb-histogram-image"),
        workloads::findWorkload("sandra-crypt-aes128"),
    };
    for (const auto *w : apps)
        ASSERT_NE(w, nullptr);

    // Reference: the plain serial loop everyone used before.
    std::vector<core::ProfiledApp> reference;
    for (const auto *w : apps)
        reference.push_back(core::profileApp(*w));

    for (unsigned threads :
         {1u, 4u, std::max(1u, std::thread::hardware_concurrency())}) {
        ThreadPool pool(threads);
        std::vector<core::ProfiledApp> suite = core::profileSuite(
            apps, gpu::DeviceConfig::hd4000(), {}, &pool);
        ASSERT_EQ(suite.size(), reference.size());
        for (size_t i = 0; i < suite.size(); ++i) {
            EXPECT_EQ(suite[i].name, reference[i].name);
            EXPECT_EQ(suite[i].db.numDispatches(),
                      reference[i].db.numDispatches());
            EXPECT_EQ(suite[i].db.totalInstrs(),
                      reference[i].db.totalInstrs());
            // Modeled times are doubles: bitwise equality required.
            EXPECT_EQ(suite[i].db.totalSeconds(),
                      reference[i].db.totalSeconds());
            for (uint64_t d = 0; d < suite[i].db.numDispatches();
                 ++d) {
                ASSERT_EQ(suite[i].db.seconds(d),
                          reference[i].db.seconds(d));
                ASSERT_EQ(suite[i].db.profileAt(d).instrs,
                          reference[i].db.profileAt(d).instrs);
            }
            EXPECT_EQ(suite[i].recording.size(),
                      reference[i].recording.size());
        }
    }
    setLogQuiet(false);
}

TEST(Determinism, RngSplitIsOrderIndependent)
{
    Rng base(12345);
    Rng a_first = base.split(0);
    Rng b_first = base.split(7);
    // Splitting in the opposite order (or from a copy) must produce
    // the same streams — split() never advances the parent.
    Rng b_again = base.split(7);
    Rng a_again = base.split(0);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a_first.next(), a_again.next());
        EXPECT_EQ(b_first.next(), b_again.next());
    }
    // And distinct streams differ.
    Rng x = base.split(1), y = base.split(2);
    bool all_equal = true;
    for (int i = 0; i < 16; ++i)
        all_equal = all_equal && (x.next() == y.next());
    EXPECT_FALSE(all_equal);
}

} // anonymous namespace
} // namespace gt::sched
