/**
 * @file
 * Unit tests for the device ISA: opcode taxonomy, the kernel
 * builder, the binary verifier, and the disassembler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"

namespace gt::isa
{
namespace
{

// --- opcode taxonomy -------------------------------------------------

TEST(Opcode, EveryOpcodeHasClassAndName)
{
    for (int op = 0; op < numOpcodes; ++op) {
        EXPECT_NO_THROW(opClass((Opcode)op));
        EXPECT_NE(opcodeName((Opcode)op), nullptr);
        EXPECT_GT(std::string(opcodeName((Opcode)op)).size(), 0u);
    }
}

TEST(Opcode, ClassesMatchPaperTaxonomy)
{
    EXPECT_EQ(opClass(Opcode::Mov), OpClass::Move);
    EXPECT_EQ(opClass(Opcode::Sel), OpClass::Move);
    EXPECT_EQ(opClass(Opcode::Xor), OpClass::Logic);
    EXPECT_EQ(opClass(Opcode::Shl), OpClass::Logic);
    // The paper groups compares under logic.
    EXPECT_EQ(opClass(Opcode::Cmp), OpClass::Logic);
    EXPECT_EQ(opClass(Opcode::Brc), OpClass::Control);
    EXPECT_EQ(opClass(Opcode::Halt), OpClass::Control);
    EXPECT_EQ(opClass(Opcode::FMad), OpClass::Computation);
    EXPECT_EQ(opClass(Opcode::Sin), OpClass::Computation);
    EXPECT_EQ(opClass(Opcode::Send), OpClass::Send);
    EXPECT_EQ(opClass(Opcode::ProfCount),
              OpClass::Instrumentation);
}

TEST(Opcode, TerminatorsAndControl)
{
    EXPECT_TRUE(isTerminator(Opcode::Jmpi));
    EXPECT_TRUE(isTerminator(Opcode::Brc));
    EXPECT_TRUE(isTerminator(Opcode::Halt));
    EXPECT_TRUE(isTerminator(Opcode::Ret));
    EXPECT_FALSE(isTerminator(Opcode::Call));
    EXPECT_FALSE(isTerminator(Opcode::Add));
    EXPECT_TRUE(isControl(Opcode::Call));
}

TEST(Opcode, FlagReaders)
{
    EXPECT_TRUE(readsFlag(Opcode::Brc));
    EXPECT_TRUE(readsFlag(Opcode::Brnc));
    EXPECT_TRUE(readsFlag(Opcode::Sel));
    EXPECT_FALSE(readsFlag(Opcode::Cmp));
}

TEST(Opcode, FloatOps)
{
    EXPECT_TRUE(isFloatOp(Opcode::FAdd));
    EXPECT_TRUE(isFloatOp(Opcode::Rsqrt));
    EXPECT_FALSE(isFloatOp(Opcode::Add));
    EXPECT_FALSE(isFloatOp(Opcode::Xor));
}

TEST(Opcode, EvalCmpSignedSemantics)
{
    EXPECT_TRUE(evalCmp(CmpOp::Lt, (uint32_t)-5, 3));
    EXPECT_FALSE(evalCmp(CmpOp::Gt, (uint32_t)-5, 3));
    EXPECT_TRUE(evalCmp(CmpOp::Eq, 7, 7));
    EXPECT_TRUE(evalCmp(CmpOp::Ne, 7, 8));
    EXPECT_TRUE(evalCmp(CmpOp::Le, 7, 7));
    EXPECT_TRUE(evalCmp(CmpOp::Ge, 8, 7));
}

// --- builder ----------------------------------------------------------

TEST(Builder, MinimalKernel)
{
    KernelBuilder b("k", 0);
    Reg r = b.reg();
    b.mov(r, imm(1), 1);
    b.halt();
    KernelBinary bin = b.finish();
    EXPECT_EQ(bin.name, "k");
    EXPECT_EQ(bin.blocks.size(), 1u);
    EXPECT_EQ(bin.staticInstrCount(), 2u);
}

TEST(Builder, LoopCreatesBackEdge)
{
    KernelBuilder b("loop", 0);
    Reg c = b.reg();
    b.beginLoop(c, imm(10));
    Reg x = b.reg();
    b.add(x, x, imm(1), 16);
    b.endLoop();
    b.halt();
    KernelBinary bin = b.finish();
    // Entry block, loop body block, exit block.
    EXPECT_GE(bin.blocks.size(), 2u);
    bool has_back_edge = false;
    for (const auto &block : bin.blocks) {
        for (uint32_t succ : bin.successors(block))
            has_back_edge = has_back_edge || succ <= block.id;
    }
    EXPECT_TRUE(has_back_edge);
}

TEST(Builder, ForwardBranchResolved)
{
    KernelBuilder b("fwd", 0);
    Flag f = b.flag();
    Reg x = b.reg();
    b.cmp(CmpOp::Eq, f, imm(1), imm(1), 1);
    b.brc(f, "end");
    b.mov(x, imm(5), 1);
    b.label("end");
    b.halt();
    KernelBinary bin = b.finish();
    const Instruction *term = bin.blocks[0].terminator();
    ASSERT_NE(term, nullptr);
    EXPECT_EQ(term->op, Opcode::Brc);
    EXPECT_EQ((size_t)term->target, bin.blocks.size() - 1);
}

TEST(Builder, UndefinedLabelPanics)
{
    setLogQuiet(true);
    KernelBuilder b("bad", 0);
    b.jmp("nowhere");
    b.halt();
    EXPECT_THROW(b.finish(), PanicError);
    setLogQuiet(false);
}

TEST(Builder, DuplicateLabelPanics)
{
    setLogQuiet(true);
    KernelBuilder b("dup", 0);
    Reg r = b.reg();
    b.label("a");
    b.mov(r, imm(0), 1);
    EXPECT_THROW(b.label("a"), PanicError);
    setLogQuiet(false);
}

TEST(Builder, MissingTerminatorFatal)
{
    setLogQuiet(true);
    KernelBuilder b("open", 0);
    Reg r = b.reg();
    b.mov(r, imm(0), 1);
    EXPECT_THROW(b.finish(), FatalError);
    setLogQuiet(false);
}

TEST(Builder, UnclosedLoopPanics)
{
    setLogQuiet(true);
    KernelBuilder b("unclosed", 0);
    Reg c = b.reg();
    b.beginLoop(c, imm(4));
    b.halt();
    EXPECT_THROW(b.finish(), PanicError);
    setLogQuiet(false);
}

TEST(Builder, RegisterExhaustionPanics)
{
    setLogQuiet(true);
    KernelBuilder b("regs", 0);
    EXPECT_THROW(
        {
            for (int i = 0; i < numRegisters + 1; ++i)
                b.reg();
        },
        PanicError);
    setLogQuiet(false);
}

TEST(Builder, ArgRegistersPreloadedLayout)
{
    KernelBuilder b("args", 3);
    EXPECT_EQ(b.arg(0).idx, 2);
    EXPECT_EQ(b.arg(2).idx, 4);
    setLogQuiet(true);
    EXPECT_THROW(b.arg(3), PanicError);
    setLogQuiet(false);
    // First allocated register comes after the arguments.
    EXPECT_EQ(b.reg().idx, 5);
}

TEST(Builder, SingleUse)
{
    setLogQuiet(true);
    KernelBuilder b("once", 0);
    b.halt();
    b.finish();
    EXPECT_THROW(b.finish(), PanicError);
    setLogQuiet(false);
}

TEST(Builder, NestedLoops)
{
    KernelBuilder b("nest", 0);
    Reg i = b.reg(), j = b.reg(), acc = b.reg();
    b.mov(acc, imm(0), 1);
    b.beginLoop(i, imm(3));
    b.beginLoop(j, imm(4));
    b.add(acc, acc, imm(1), 1);
    b.endLoop();
    b.endLoop();
    b.halt();
    EXPECT_NO_THROW(b.finish());
}

TEST(Builder, CallAndSubroutine)
{
    KernelBuilder b("sub", 0);
    Reg r = b.reg();
    b.mov(r, imm(0), 1);
    b.call("fn");
    b.halt();
    b.label("fn");
    b.add(r, r, imm(1), 1);
    b.ret();
    KernelBinary bin = b.finish();
    bool has_call = false, has_ret = false;
    for (const auto &block : bin.blocks) {
        for (const auto &ins : block.instrs) {
            has_call = has_call || ins.op == Opcode::Call;
            has_ret = has_ret || ins.op == Opcode::Ret;
        }
    }
    EXPECT_TRUE(has_call);
    EXPECT_TRUE(has_ret);
}

TEST(Builder, FimmRoundTrips)
{
    Operand o = fimm(1.5f);
    EXPECT_TRUE(o.isImm());
    EXPECT_EQ(o.imm, 0x3fc00000u);
}

// --- verifier ---------------------------------------------------------

TEST(Verify, RejectsBadBranchTarget)
{
    setLogQuiet(true);
    KernelBinary bin;
    bin.name = "bad";
    BasicBlock block;
    block.id = 0;
    Instruction jmp;
    jmp.op = Opcode::Jmpi;
    jmp.target = 99;
    block.instrs.push_back(jmp);
    bin.blocks.push_back(block);
    EXPECT_THROW(verify(bin), PanicError);
    setLogQuiet(false);
}

TEST(Verify, RejectsEmptyBinary)
{
    setLogQuiet(true);
    KernelBinary bin;
    bin.name = "empty";
    EXPECT_THROW(verify(bin), PanicError);
    setLogQuiet(false);
}

TEST(Verify, RejectsTerminatorMidBlock)
{
    setLogQuiet(true);
    KernelBinary bin;
    bin.name = "mid";
    BasicBlock block;
    block.id = 0;
    Instruction halt;
    halt.op = Opcode::Halt;
    Instruction mov;
    mov.op = Opcode::Mov;
    mov.dst = 3;
    mov.src0 = Operand::fromImm(1);
    block.instrs.push_back(halt);
    block.instrs.push_back(mov);
    bin.blocks.push_back(block);
    bin.maxReg = 3;
    EXPECT_THROW(verify(bin), PanicError);
    setLogQuiet(false);
}

TEST(Verify, RejectsBadSimdWidth)
{
    setLogQuiet(true);
    KernelBuilder b("w", 0);
    Reg r = b.reg();
    b.mov(r, imm(0), 1);
    b.halt();
    KernelBinary bin = b.finish();
    bin.blocks[0].instrs[0].simdWidth = 3;
    EXPECT_THROW(verify(bin), PanicError);
    setLogQuiet(false);
}

TEST(Verify, RejectsFallthroughPastEnd)
{
    setLogQuiet(true);
    KernelBinary bin;
    bin.name = "fall";
    BasicBlock block;
    block.id = 0;
    Instruction mov;
    mov.op = Opcode::Mov;
    mov.dst = 2;
    mov.src0 = Operand::fromImm(1);
    block.instrs.push_back(mov);
    bin.blocks.push_back(block);
    bin.maxReg = 2;
    EXPECT_THROW(verify(bin), PanicError);
    setLogQuiet(false);
}

TEST(Verify, RejectsSendWithoutAddress)
{
    setLogQuiet(true);
    KernelBuilder b("send", 1);
    Reg r = b.reg();
    b.load(r, b.arg(0), 4, 16);
    b.halt();
    KernelBinary bin = b.finish();
    bin.blocks[0].instrs[0].send.addrReg = noReg;
    EXPECT_THROW(verify(bin), PanicError);
    setLogQuiet(false);
}

// --- structure helpers -------------------------------------------------

TEST(Kernel, SuccessorsOfConditional)
{
    KernelBuilder b("succ", 0);
    Flag f = b.flag();
    Reg r = b.reg();
    b.cmp(CmpOp::Lt, f, imm(0), imm(1), 1);
    b.brc(f, "target");
    b.mov(r, imm(1), 1);
    b.label("target");
    b.halt();
    KernelBinary bin = b.finish();
    auto succs = bin.successors(bin.blocks[0]);
    EXPECT_EQ(succs.size(), 2u);
}

TEST(Kernel, AppInstrCountExcludesInstrumentation)
{
    BasicBlock block;
    Instruction mov;
    mov.op = Opcode::Mov;
    Instruction prof;
    prof.op = Opcode::ProfCount;
    block.instrs = {mov, prof, mov};
    EXPECT_EQ(block.appInstrCount(), 2u);
}

// --- disassembler -------------------------------------------------------

TEST(Disasm, FormatsCommonInstructions)
{
    KernelBuilder b("dis", 2);
    Reg r = b.reg();
    Reg a = b.reg();
    b.mov(a, b.arg(0), 16);
    b.load(r, a, 4, 16);
    b.store(r, a, 4, 8);
    Flag f = b.flag();
    b.cmp(CmpOp::Lt, f, r, imm(10), 1);
    b.brc(f, "end");
    b.label("end");
    b.halt();
    KernelBinary bin = b.finish();
    std::ostringstream os;
    disassemble(bin, os);
    std::string out = os.str();
    EXPECT_NE(out.find("mov(16)"), std::string::npos);
    EXPECT_NE(out.find("cmp.lt"), std::string::npos);
    EXPECT_NE(out.find("global["), std::string::npos);
    EXPECT_NE(out.find("brc"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
}

TEST(Disasm, EveryOpcodeFormats)
{
    // disassemble() must not panic on any well-formed instruction.
    for (int op = 0; op < numOpcodes; ++op) {
        Instruction ins;
        ins.op = (Opcode)op;
        ins.simdWidth = 8;
        ins.dst = 5;
        ins.src0 = Operand::fromReg(6);
        ins.src1 = Operand::fromImm(3);
        ins.target = 0;
        ins.send.addrReg = 7;
        EXPECT_NO_THROW(disassemble(ins)) << opcodeName((Opcode)op);
    }
}

} // anonymous namespace
} // namespace gt::isa
