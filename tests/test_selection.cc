/**
 * @file
 * Subset-selection and SPI-projection tests (Section V, Eq. 1): the
 * end-to-end pipeline on real applications, projection correctness,
 * the 30-configuration explorer, and the two selection policies —
 * parameterized where the property holds for every configuration.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/pipeline.hh"

namespace gt::core
{
namespace
{

/** One shared profile per app (profiling is the expensive step). */
const ProfiledApp &
profiled(const std::string &name)
{
    static std::map<std::string, ProfiledApp> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const workloads::Workload *w = workloads::findWorkload(name);
        GT_ASSERT(w, "unknown workload ", name);
        it = cache.emplace(name, profileApp(*w)).first;
    }
    return it->second;
}

using Config = std::pair<IntervalScheme, FeatureKind>;

class ConfigTest : public ::testing::TestWithParam<Config>
{
};

TEST_P(ConfigTest, SelectionInvariants)
{
    const ProfiledApp &app = profiled("cb-histogram-buffer");
    SubsetSelection sel = selectSubset(
        app.db, GetParam().first, GetParam().second);

    EXPECT_EQ(sel.scheme, GetParam().first);
    EXPECT_EQ(sel.feature, GetParam().second);
    ASSERT_FALSE(sel.selected.empty());
    EXPECT_LE(sel.selected.size(), 10u); // the paper's max clusters
    ASSERT_EQ(sel.selected.size(), sel.ratios.size());

    double ratio_sum = 0.0;
    for (size_t c = 0; c < sel.selected.size(); ++c) {
        EXPECT_LT(sel.selected[c], sel.intervals.size());
        EXPECT_GT(sel.ratios[c], 0.0);
        ratio_sum += sel.ratios[c];
    }
    EXPECT_NEAR(ratio_sum, 1.0, 1e-9);

    EXPECT_EQ(sel.totalInstrs, app.db.totalInstrs());
    EXPECT_GT(sel.selectedInstrs, 0u);
    EXPECT_LE(sel.selectedInstrs, sel.totalInstrs);
    EXPECT_GT(sel.selectionFraction(), 0.0);
    EXPECT_LE(sel.selectionFraction(), 1.0);
    EXPECT_GE(sel.speedup(), 1.0);

    // Projection is finite and positive; error is a percentage.
    double proj = projectedSpi(app.db, sel);
    EXPECT_GT(proj, 0.0);
    double err = selectionErrorPct(app.db, sel);
    EXPECT_GE(err, 0.0);
    EXPECT_LT(err, 100.0);
}

INSTANTIATE_TEST_SUITE_P(
    All30Configs, ConfigTest, ::testing::ValuesIn([] {
        std::vector<Config> configs;
        for (int s = 0; s < numIntervalSchemes; ++s) {
            for (int f = 0; f < numFeatureKinds; ++f)
                configs.emplace_back((IntervalScheme)s,
                                     (FeatureKind)f);
        }
        return configs;
    }()),
    [](const auto &info) {
        std::string s =
            std::string(intervalSchemeName(info.param.first)) +
            "_" + featureKindName(info.param.second);
        std::string out;
        for (char c : s)
            out += std::isalnum((unsigned char)c) ? c : '_';
        return out;
    });

TEST(Selection, SelectingEveryIntervalIsErrorFree)
{
    // If every interval is its own cluster, the projection is the
    // exact instruction-weighted SPI decomposition.
    const ProfiledApp &app = profiled("cb-gaussian-image");
    SubsetSelection sel;
    sel.scheme = IntervalScheme::SingleKernel;
    sel.feature = FeatureKind::BB;
    sel.intervals =
        buildIntervals(app.db, IntervalScheme::SingleKernel);
    sel.totalInstrs = app.db.totalInstrs();
    for (uint64_t i = 0; i < sel.intervals.size(); ++i) {
        sel.selected.push_back(i);
        sel.ratios.push_back((double)sel.intervals[i].instrs /
                             (double)app.db.totalInstrs());
        sel.selectedInstrs += sel.intervals[i].instrs;
    }
    EXPECT_LT(selectionErrorPct(app.db, sel), 1e-6);
}

TEST(Selection, ReasonableErrorOnRealApplication)
{
    // The headline property: a <=10-interval subset predicts whole
    // program SPI within a few percent.
    const ProfiledApp &app = profiled("cb-histogram-buffer");
    SubsetSelection sel =
        selectSubset(app.db, IntervalScheme::SyncBounded,
                     FeatureKind::BB);
    EXPECT_LT(selectionErrorPct(app.db, sel), 10.0);
    EXPECT_GT(sel.speedup(), 2.0);
}

TEST(Selection, CrossTrialProjection)
{
    // Selections from trial 1 evaluated against a replayed trial 2
    // (different noise seed): the paper's Fig. 8 top plot.
    const ProfiledApp &app = profiled("cb-gaussian-image");
    SubsetSelection sel =
        selectSubset(app.db, IntervalScheme::SyncBounded,
                     FeatureKind::BB);
    gpu::TrialConfig trial2;
    trial2.noiseSeed = 999;
    TraceDatabase db2 = replayTrial(
        app.recording, gpu::DeviceConfig::hd4000(), trial2);

    EXPECT_EQ(db2.numDispatches(), app.db.numDispatches());
    // Counts are deterministic across trials.
    EXPECT_EQ(db2.totalInstrs(), app.db.totalInstrs());
    double err = selectionErrorPct(db2, sel);
    EXPECT_LT(err, 10.0);
}

TEST(Selection, SelectionTooLargeForTrialPanics)
{
    setLogQuiet(true);
    const ProfiledApp &app = profiled("cb-gaussian-image");
    SubsetSelection sel =
        selectSubset(app.db, IntervalScheme::SingleKernel,
                     FeatureKind::KN);
    // Corrupt the selection to reference dispatches out of range.
    sel.intervals.back().lastDispatch = 1 << 30;
    sel.selected = {sel.intervals.size() - 1};
    sel.ratios = {1.0};
    EXPECT_THROW(projectedSpi(app.db, sel), PanicError);
    setLogQuiet(false);
}

// --- explorer -------------------------------------------------------

TEST(Explorer, EvaluatesAll30Configurations)
{
    const ProfiledApp &app = profiled("cb-gaussian-image");
    Exploration ex = exploreConfigs(app.db);
    EXPECT_EQ(ex.results.size(), 30u);
    // Every (scheme, feature) pair appears exactly once.
    for (int s = 0; s < numIntervalSchemes; ++s) {
        for (int f = 0; f < numFeatureKinds; ++f) {
            const ConfigResult &r =
                ex.result((IntervalScheme)s, (FeatureKind)f);
            EXPECT_EQ(r.selection.scheme, (IntervalScheme)s);
            EXPECT_EQ(r.selection.feature, (FeatureKind)f);
            EXPECT_GE(r.errorPct, 0.0);
        }
    }
}

TEST(Explorer, MinErrorPolicyIsMinimal)
{
    const ProfiledApp &app = profiled("cb-gaussian-image");
    Exploration ex = exploreConfigs(app.db);
    const ConfigResult &best = pickMinError(ex);
    for (const ConfigResult &r : ex.results)
        EXPECT_LE(best.errorPct, r.errorPct);
}

TEST(Explorer, CoOptimizedRespectsThreshold)
{
    const ProfiledApp &app = profiled("cb-gaussian-image");
    Exploration ex = exploreConfigs(app.db);
    const ConfigResult &best = pickMinError(ex);

    for (double threshold : {0.5, 1.0, 3.0, 10.0}) {
        const ConfigResult &chosen =
            pickCoOptimized(ex, threshold);
        if (chosen.errorPct > threshold) {
            // Fallback: must be the error-minimizing config.
            EXPECT_DOUBLE_EQ(chosen.errorPct, best.errorPct);
        } else {
            // Among qualifying configs, none is smaller.
            for (const ConfigResult &r : ex.results) {
                if (r.errorPct <= threshold) {
                    EXPECT_LE(
                        chosen.selection.selectionFraction(),
                        r.selection.selectionFraction() + 1e-12);
                }
            }
        }
    }
}

TEST(Explorer, RelaxedThresholdsNeverSlowSimulation)
{
    const ProfiledApp &app = profiled("cb-histogram-buffer");
    Exploration ex = exploreConfigs(app.db);
    double prev_fraction = 2.0;
    for (double threshold : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        const ConfigResult &chosen =
            pickCoOptimized(ex, threshold);
        if (chosen.errorPct <= threshold) {
            // Qualifying selections shrink (weakly) as the
            // threshold relaxes — the monotonicity behind Fig. 7.
            EXPECT_LE(chosen.selection.selectionFraction(),
                      prev_fraction + 1e-12);
            prev_fraction = chosen.selection.selectionFraction();
        }
    }
}

} // anonymous namespace
} // namespace gt::core
