/**
 * @file
 * Detailed-simulator tests: the cycle-level model must respect
 * dependences, bandwidth, and parallelism, and must be usable for
 * simulating selected intervals.
 */

#include <gtest/gtest.h>

#include "gpu/detailed_checkpoint.hh"
#include "gpu/detailed_sim.hh"
#include "gpu/eu_pipeline.hh"
#include "isa/builder.hh"
#include "sched/thread_pool.hh"
#include "workloads/templates.hh"

namespace gt::gpu
{
namespace
{

using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Reg;
using isa::imm;

class DetailedSimTest : public ::testing::Test
{
  protected:
    DetailedSimTest()
        : config(DeviceConfig::hd4000()), memory(16 << 20),
          exec(config, memory)
    {}

    KernelBinary
    chainKernel(bool dependent)
    {
        KernelBuilder b(dependent ? "dep" : "indep", 0);
        Reg c = b.reg();
        std::vector<Reg> regs;
        for (int i = 0; i < 8; ++i)
            regs.push_back(b.reg());
        b.beginLoop(c, imm(200));
        for (int i = 0; i < 8; ++i) {
            if (dependent) {
                // Serial chain through one register.
                b.fmul(regs[0], regs[0], regs[0], 8);
            } else {
                // Independent streams.
                b.fmul(regs[(size_t)i], regs[(size_t)i],
                       regs[(size_t)i], 8);
            }
        }
        b.endLoop();
        b.halt();
        return b.finish();
    }

    DeviceConfig config;
    DeviceMemory memory;
    Executor exec;
};

TEST_F(DetailedSimTest, ProducesPositiveResult)
{
    KernelBinary bin = chainKernel(false);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1024;
    d.simdWidth = 16;

    DetailedSimulator sim(config);
    DetailedResult r = sim.simulate(exec, d);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.simulatedInstrs, 0u);
    EXPECT_GT(r.spi, 0.0);
}

TEST_F(DetailedSimTest, DependencyChainsAreSlower)
{
    KernelBinary dep = chainKernel(true);
    KernelBinary indep = chainKernel(false);
    Dispatch d;
    d.globalSize = 16; // one thread per EU wave: no SMT hiding
    d.simdWidth = 16;

    DetailedSimulator sim(config);
    d.binary = &dep;
    double t_dep = sim.simulate(exec, d).cycles;
    d.binary = &indep;
    double t_indep = sim.simulate(exec, d).cycles;
    EXPECT_GT(t_dep, t_indep * 1.2);
}

TEST_F(DetailedSimTest, SmtHidesLatency)
{
    KernelBinary dep = chainKernel(true);
    Dispatch one;
    one.binary = &dep;
    one.globalSize = 16; // 1 hardware thread
    one.simdWidth = 16;
    Dispatch many = one;
    many.globalSize = 16 * 8 * 16; // all SMT contexts busy

    DetailedSimulator sim(config);
    double spi_one = sim.simulate(exec, one).spi;
    double spi_many = sim.simulate(exec, many).spi;
    // Per-instruction cost drops when SMT can interleave threads.
    EXPECT_LT(spi_many, spi_one);
}

TEST_F(DetailedSimTest, MoreEusScaleThroughput)
{
    KernelBinary bin = chainKernel(false);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1 << 16;
    d.simdWidth = 16;

    DetailedSimulator ivb(DeviceConfig::hd4000(), 1150.0);
    DetailedSimulator hsw(DeviceConfig::hd4600(), 1150.0);
    double t_ivb = hsw.simulate(exec, d).seconds;
    double t_hsw = ivb.simulate(exec, d).seconds;
    // 20 EUs vs 16 EUs at matched clocks.
    EXPECT_LT(t_ivb, t_hsw);
}

TEST_F(DetailedSimTest, MemoryTrafficCostsCycles)
{
    workloads::TemplateJit jit;
    isa::KernelSource heavy_src;
    heavy_src.name = "mem_heavy";
    heavy_src.templateName = "reduce";
    heavy_src.params = {64, 0xffff, 16};
    KernelBinary heavy = jit.compile(heavy_src);

    isa::KernelSource light_src;
    light_src.name = "mem_light";
    light_src.templateName = "stress";
    light_src.params = {8, 8, 16};
    KernelBinary light = jit.compile(light_src);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch dh;
    dh.binary = &heavy;
    dh.globalSize = 1024;
    dh.simdWidth = 16;
    dh.args = {base, base};

    DetailedSimulator sim(config);
    DetailedResult r = sim.simulate(exec, dh);
    // A gather-heavy kernel must show SPI well above the ~1-cycle
    // ALU ideal.
    double cycles_per_instr = r.cycles /
        ((double)r.simulatedInstrs *
         ((double)dh.numThreads() /
          (double)config.totalHwThreads()));
    EXPECT_GT(cycles_per_instr, 0.0);
    (void)light;
}

TEST_F(DetailedSimTest, DetailedSimIsSlowerThanProfiling)
{
    // The motivation for the whole paper: walking instructions in
    // detail costs orders of magnitude more host work than the fast
    // profiling path. We check the structural fact that the detailed
    // simulator walks (simulates) every instruction of a wave while
    // fast profiling executes only the control slice of one thread.
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "slow";
    src.templateName = "julia";
    src.params = {64, 16};
    KernelBinary bin = jit.compile(src);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 64;
    d.simdWidth = 16;
    d.args = {base, 0x3f000000u, 0x3e000000u};

    DetailedSimulator sim(config);
    DetailedResult r = sim.simulate(exec, d);
    const isa::Relevance &rel = exec.relevance(&bin);
    // Instructions walked in detail exceed the relevant (fast-mode)
    // fraction by a wide margin.
    EXPECT_GT((double)r.simulatedInstrs,
              8.0 * (double)rel.relevantCount);
}

TEST_F(DetailedSimTest, CheckpointMatchesLegacyPath)
{
    // The one-shot entry point is defined as checkpoint-then-replay;
    // building the checkpoint explicitly must give the same bits.
    KernelBinary bin = chainKernel(true);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1024;
    d.simdWidth = 16;

    DetailedSimulator sim(config);
    DetailedCheckpoint cp = exec.checkpoint(d);
    DetailedResult via_cp = sim.simulate(cp);
    DetailedResult legacy = sim.simulate(exec, d);
    EXPECT_EQ(legacy.cycles, via_cp.cycles);
    EXPECT_EQ(legacy.seconds, via_cp.seconds);
    EXPECT_EQ(legacy.spi, via_cp.spi);
    EXPECT_EQ(legacy.simulatedInstrs, via_cp.simulatedInstrs);
}

TEST_F(DetailedSimTest, ClampsContextsToDispatchThreads)
{
    // A dispatch with fewer hardware threads than SMT contexts must
    // replay only the threads it has: 1 thread issues exactly the
    // traced instructions, 8 threads per EU issue 8x.
    KernelBinary bin = chainKernel(false);
    Dispatch one;
    one.binary = &bin;
    one.globalSize = 16; // one hardware thread total
    one.simdWidth = 16;
    Dispatch full = one;
    full.globalSize = 16ull * config.threadsPerEu * config.numEus;

    DetailedCheckpoint cp1 = exec.checkpoint(one);
    DetailedCheckpoint cp8 = exec.checkpoint(full);
    ASSERT_EQ(cp1.numThreads, 1u);
    ASSERT_EQ(cp8.numThreads,
              (uint64_t)config.threadsPerEu * config.numEus);
    ASSERT_EQ(cp1.tracedInstrs, cp8.tracedInstrs);

    DetailedSimulator sim(config);
    EXPECT_EQ(sim.simulate(cp1).simulatedInstrs, cp1.tracedInstrs);
    EXPECT_EQ(sim.simulate(cp8).simulatedInstrs,
              config.threadsPerEu * cp8.tracedInstrs);
}

TEST_F(DetailedSimTest, TruncatedTraceScalesCycles)
{
    // Capping the block trace below the kernel's dynamic length must
    // record the shortfall and scale the replayed cycles by exactly
    // the truncation factor.
    KernelBinary bin = chainKernel(true);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1024;
    d.simdWidth = 16;

    DetailedCheckpoint full = exec.checkpoint(d);
    DetailedCheckpoint cut = exec.checkpoint(d, 16);
    ASSERT_GT(cut.truncation, 1.0);
    EXPECT_GT(cut.truncation, full.truncation);
    ASSERT_LT(cut.trace.size(), full.trace.size());

    DetailedSimulator sim(config);
    DetailedCheckpoint unscaled = cut;
    unscaled.truncation = 1.0;
    EXPECT_DOUBLE_EQ(sim.simulate(cut).cycles,
                     sim.simulate(unscaled).cycles *
                         cut.truncation);
}

TEST_F(DetailedSimTest, SingleBlockKernel)
{
    // No control flow at all: the trace is one block and the traced
    // instruction count is that block's size.
    KernelBuilder b("straightline", 0);
    Reg r = b.reg();
    for (int i = 0; i < 6; ++i)
        b.fmul(r, r, r, 8);
    b.halt();
    KernelBinary bin = b.finish();

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 256;
    d.simdWidth = 16;

    DetailedCheckpoint cp = exec.checkpoint(d);
    ASSERT_EQ(cp.trace.size(), 1u);
    EXPECT_EQ(cp.tracedInstrs,
              bin.blocks[cp.trace[0]].instrs.size());

    DetailedResult r2 = DetailedSimulator(config).simulate(cp);
    EXPECT_GT(r2.cycles, 0.0);
    EXPECT_GT(r2.simulatedInstrs, 0u);
}

TEST_F(DetailedSimTest, MathOpsCostMoreThanAlu)
{
    // Same dependent chain shape, different latency class: the
    // extended-math pipe (fdiv) must be slower than the ALU (fmul)
    // when SMT cannot hide the chain.
    auto chain = [](bool math) {
        KernelBuilder b(math ? "math" : "alu", 0);
        Reg c = b.reg();
        Reg r = b.reg();
        b.beginLoop(c, imm(100));
        for (int i = 0; i < 4; ++i) {
            if (math)
                b.fdiv(r, r, r, 8);
            else
                b.fmul(r, r, r, 8);
        }
        b.endLoop();
        b.halt();
        return b.finish();
    };
    KernelBinary alu = chain(false);
    KernelBinary math = chain(true);

    Dispatch d;
    d.globalSize = 16; // one thread: expose the raw latencies
    d.simdWidth = 16;

    DetailedSimulator sim(config);
    d.binary = &alu;
    double alu_cycles = sim.simulate(exec, d).cycles;
    d.binary = &math;
    double math_cycles = sim.simulate(exec, d).cycles;
    EXPECT_GT(math_cycles, alu_cycles * 1.5);
}

TEST_F(DetailedSimTest, CheckpointStoreMemoizes)
{
    KernelBinary bin = chainKernel(false);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1024;
    d.simdWidth = 16;
    d.args = {1, 2, 3};

    CheckpointStore store;
    const DetailedCheckpoint &a = store.get(exec, d, 7);
    const DetailedCheckpoint &b = store.get(exec, d, 7);
    EXPECT_EQ(&a, &b); // stable reference, no rebuild
    EXPECT_EQ(store.builds(), 1u);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.size(), 1u);

    Dispatch other = d;
    other.args = {1, 2, 4};
    const DetailedCheckpoint &c = store.get(exec, other, 7);
    EXPECT_NE(&a, &c); // distinct args -> distinct checkpoint
    EXPECT_EQ(store.builds(), 2u);
    EXPECT_NE(dispatchArgsHash(d.args),
              dispatchArgsHash(other.args));
}

TEST_F(DetailedSimTest, SerialParallelBitwiseAcrossDesignPoints)
{
    // The fig8 replay matrix collapses to 7 distinct design points
    // for the cycle model (noise seeds do not enter it): the
    // profiling clock, the 5-step frequency sweep, and the next
    // generation. At each, the parallel machine layer must match the
    // serial oracle bit for bit at 1, 4, and hardware-width pools.
    KernelBinary dep = chainKernel(true);
    KernelBinary indep = chainKernel(false);
    std::vector<DetailedCheckpoint> cps;
    for (KernelBinary *bin : {&dep, &indep}) {
        for (uint64_t global : {16ull, 1024ull, 1ull << 16}) {
            Dispatch d;
            d.binary = bin;
            d.globalSize = global;
            d.simdWidth = 16;
            cps.push_back(exec.checkpoint(d));
        }
    }
    std::vector<const DetailedCheckpoint *> cells;
    for (const DetailedCheckpoint &cp : cps)
        cells.push_back(&cp);

    struct Point
    {
        DeviceConfig config;
        double freqMhz;
    };
    std::vector<Point> points{{DeviceConfig::hd4000(), 0.0},
                              {DeviceConfig::hd4600(), 0.0}};
    for (double f : {1000.0, 850.0, 700.0, 550.0, 350.0})
        points.push_back({DeviceConfig::hd4000(), f});

    sched::ThreadPool pool1(1), pool4(4);
    std::vector<sched::ThreadPool *> pools{
        &pool1, &pool4, &sched::ThreadPool::global()};

    using Backend = DetailedSimulator::Backend;
    for (const Point &pt : points) {
        DetailedSimulator sim(pt.config, pt.freqMhz);
        std::vector<DetailedResult> want =
            sim.simulateBatch(cells, Backend::Serial);
        for (sched::ThreadPool *pool : pools) {
            std::vector<DetailedResult> got =
                sim.simulateBatch(cells, Backend::Parallel, pool);
            ASSERT_EQ(want.size(), got.size());
            for (size_t i = 0; i < want.size(); ++i) {
                EXPECT_EQ(want[i].cycles, got[i].cycles);
                EXPECT_EQ(want[i].seconds, got[i].seconds);
                EXPECT_EQ(want[i].spi, got[i].spi);
                EXPECT_EQ(want[i].simulatedInstrs,
                          got[i].simulatedInstrs);
            }
        }
    }
}

TEST_F(DetailedSimTest, BackendNamesAndDefault)
{
    using Backend = DetailedSimulator::Backend;
    EXPECT_STREQ("serial",
                 DetailedSimulator::backendName(Backend::Serial));
    EXPECT_STREQ("parallel",
                 DetailedSimulator::backendName(Backend::Parallel));
    // The default is env-driven; whatever it resolved to must be one
    // of the two public names (unknown values fatal at startup).
    Backend def = DetailedSimulator::defaultBackend();
    EXPECT_TRUE(def == Backend::Serial || def == Backend::Parallel);
}

} // anonymous namespace
} // namespace gt::gpu
