/**
 * @file
 * Detailed-simulator tests: the cycle-level model must respect
 * dependences, bandwidth, and parallelism, and must be usable for
 * simulating selected intervals.
 */

#include <gtest/gtest.h>

#include "gpu/detailed_sim.hh"
#include "isa/builder.hh"
#include "workloads/templates.hh"

namespace gt::gpu
{
namespace
{

using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Reg;
using isa::imm;

class DetailedSimTest : public ::testing::Test
{
  protected:
    DetailedSimTest()
        : config(DeviceConfig::hd4000()), memory(16 << 20),
          exec(config, memory)
    {}

    KernelBinary
    chainKernel(bool dependent)
    {
        KernelBuilder b(dependent ? "dep" : "indep", 0);
        Reg c = b.reg();
        std::vector<Reg> regs;
        for (int i = 0; i < 8; ++i)
            regs.push_back(b.reg());
        b.beginLoop(c, imm(200));
        for (int i = 0; i < 8; ++i) {
            if (dependent) {
                // Serial chain through one register.
                b.fmul(regs[0], regs[0], regs[0], 8);
            } else {
                // Independent streams.
                b.fmul(regs[(size_t)i], regs[(size_t)i],
                       regs[(size_t)i], 8);
            }
        }
        b.endLoop();
        b.halt();
        return b.finish();
    }

    DeviceConfig config;
    DeviceMemory memory;
    Executor exec;
};

TEST_F(DetailedSimTest, ProducesPositiveResult)
{
    KernelBinary bin = chainKernel(false);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1024;
    d.simdWidth = 16;

    DetailedSimulator sim(config);
    DetailedResult r = sim.simulate(exec, d);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.simulatedInstrs, 0u);
    EXPECT_GT(r.spi, 0.0);
}

TEST_F(DetailedSimTest, DependencyChainsAreSlower)
{
    KernelBinary dep = chainKernel(true);
    KernelBinary indep = chainKernel(false);
    Dispatch d;
    d.globalSize = 16; // one thread per EU wave: no SMT hiding
    d.simdWidth = 16;

    DetailedSimulator sim(config);
    d.binary = &dep;
    double t_dep = sim.simulate(exec, d).cycles;
    d.binary = &indep;
    double t_indep = sim.simulate(exec, d).cycles;
    EXPECT_GT(t_dep, t_indep * 1.2);
}

TEST_F(DetailedSimTest, SmtHidesLatency)
{
    KernelBinary dep = chainKernel(true);
    Dispatch one;
    one.binary = &dep;
    one.globalSize = 16; // 1 hardware thread
    one.simdWidth = 16;
    Dispatch many = one;
    many.globalSize = 16 * 8 * 16; // all SMT contexts busy

    DetailedSimulator sim(config);
    double spi_one = sim.simulate(exec, one).spi;
    double spi_many = sim.simulate(exec, many).spi;
    // Per-instruction cost drops when SMT can interleave threads.
    EXPECT_LT(spi_many, spi_one);
}

TEST_F(DetailedSimTest, MoreEusScaleThroughput)
{
    KernelBinary bin = chainKernel(false);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1 << 16;
    d.simdWidth = 16;

    DetailedSimulator ivb(DeviceConfig::hd4000(), 1150.0);
    DetailedSimulator hsw(DeviceConfig::hd4600(), 1150.0);
    double t_ivb = hsw.simulate(exec, d).seconds;
    double t_hsw = ivb.simulate(exec, d).seconds;
    // 20 EUs vs 16 EUs at matched clocks.
    EXPECT_LT(t_ivb, t_hsw);
}

TEST_F(DetailedSimTest, MemoryTrafficCostsCycles)
{
    workloads::TemplateJit jit;
    isa::KernelSource heavy_src;
    heavy_src.name = "mem_heavy";
    heavy_src.templateName = "reduce";
    heavy_src.params = {64, 0xffff, 16};
    KernelBinary heavy = jit.compile(heavy_src);

    isa::KernelSource light_src;
    light_src.name = "mem_light";
    light_src.templateName = "stress";
    light_src.params = {8, 8, 16};
    KernelBinary light = jit.compile(light_src);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch dh;
    dh.binary = &heavy;
    dh.globalSize = 1024;
    dh.simdWidth = 16;
    dh.args = {base, base};

    DetailedSimulator sim(config);
    DetailedResult r = sim.simulate(exec, dh);
    // A gather-heavy kernel must show SPI well above the ~1-cycle
    // ALU ideal.
    double cycles_per_instr = r.cycles /
        ((double)r.simulatedInstrs *
         ((double)dh.numThreads() /
          (double)config.totalHwThreads()));
    EXPECT_GT(cycles_per_instr, 0.0);
    (void)light;
}

TEST_F(DetailedSimTest, DetailedSimIsSlowerThanProfiling)
{
    // The motivation for the whole paper: walking instructions in
    // detail costs orders of magnitude more host work than the fast
    // profiling path. We check the structural fact that the detailed
    // simulator walks (simulates) every instruction of a wave while
    // fast profiling executes only the control slice of one thread.
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "slow";
    src.templateName = "julia";
    src.params = {64, 16};
    KernelBinary bin = jit.compile(src);

    uint32_t base = (uint32_t)memory.allocate(1 << 20);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 64;
    d.simdWidth = 16;
    d.args = {base, 0x3f000000u, 0x3e000000u};

    DetailedSimulator sim(config);
    DetailedResult r = sim.simulate(exec, d);
    const isa::Relevance &rel = exec.relevance(&bin);
    // Instructions walked in detail exceed the relevant (fast-mode)
    // fraction by a wide margin.
    EXPECT_GT((double)r.simulatedInstrs,
              8.0 * (double)rel.relevantCount);
}

} // anonymous namespace
} // namespace gt::gpu
