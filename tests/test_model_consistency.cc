/**
 * @file
 * Cross-model consistency: the analytic timing model (the "native
 * hardware") and the cycle-level detailed simulator are independent
 * implementations of the same machine; for the methodology's
 * cross-validation story to be meaningful they must agree on the
 * *ordering* of kernels by cost and respond the same way to design
 * changes, even though their absolute numbers differ.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "gpu/detailed_sim.hh"
#include "gpu/timing.hh"
#include "workloads/templates.hh"

namespace gt::gpu
{
namespace
{

struct KernelCost
{
    std::string name;
    double modelSeconds = 0.0;
    double simSeconds = 0.0;
};

class ModelConsistency : public ::testing::Test
{
  protected:
    ModelConsistency()
        : config(DeviceConfig::hd4000()), memory(32 << 20),
          exec(config, memory)
    {}

    KernelCost
    costOf(const std::string &tname)
    {
        isa::KernelSource src;
        src.name = "mc_" + tname;
        src.templateName = tname;
        isa::KernelBinary bin = workloads::TemplateJit().compile(src);

        Dispatch d;
        d.binary = &bin;
        d.globalSize = 4096;
        d.simdWidth = 16;
        uint32_t base = (uint32_t)memory.allocate(4 << 20);
        d.args.assign(bin.numArgs, base);

        TrialConfig trial;
        trial.noiseSigma = 0.0;
        TimingModel model(config, trial);
        DetailedSimulator sim(config);

        KernelCost cost;
        cost.name = tname;
        ExecProfile profile = exec.run(d, Executor::Mode::Fast);
        cost.modelSeconds = model.kernelTime(profile).seconds;
        cost.simSeconds = sim.simulate(exec, d).seconds;
        memory.resetAllocator();
        return cost;
    }

    DeviceConfig config;
    DeviceMemory memory;
    Executor exec;
};

TEST_F(ModelConsistency, KernelCostOrderingAgrees)
{
    std::vector<KernelCost> costs;
    for (const char *t :
         {"julia", "stress", "blur", "aes", "stream", "hash",
          "reduce", "nbody"}) {
        costs.push_back(costOf(t));
    }

    // Kendall-tau-style concordance between the two rankings.
    int concordant = 0, discordant = 0;
    for (size_t i = 0; i < costs.size(); ++i) {
        for (size_t j = i + 1; j < costs.size(); ++j) {
            double dm = costs[i].modelSeconds - costs[j].modelSeconds;
            double ds = costs[i].simSeconds - costs[j].simSeconds;
            if (dm * ds > 0)
                ++concordant;
            else
                ++discordant;
        }
    }
    double tau = (double)(concordant - discordant) /
        (double)(concordant + discordant);
    EXPECT_GT(tau, 0.5) << "timing model and detailed simulator "
                            "rank kernels differently";
}

TEST_F(ModelConsistency, AbsoluteAgreementWithinAnOrderOfMagnitude)
{
    for (const char *t : {"julia", "blur", "aes"}) {
        KernelCost cost = costOf(t);
        double ratio = cost.simSeconds / cost.modelSeconds;
        EXPECT_GT(ratio, 0.1) << t;
        EXPECT_LT(ratio, 10.0) << t;
    }
}

TEST_F(ModelConsistency, BothModelsPreferMoreEus)
{
    isa::KernelSource src;
    src.name = "mc_eus";
    src.templateName = "stress";
    isa::KernelBinary bin = workloads::TemplateJit().compile(src);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1 << 16;
    d.simdWidth = 16;
    d.args = {(uint32_t)memory.allocate(1 << 20)};

    DeviceConfig small = DeviceConfig::hd4000();
    DeviceConfig big = small;
    big.numEus = 32;

    TrialConfig trial;
    trial.noiseSigma = 0.0;
    ExecProfile profile = exec.run(d, Executor::Mode::Fast);
    TimingModel ms(small, trial), mb(big, trial);
    EXPECT_GT(ms.kernelTime(profile).seconds,
              mb.kernelTime(profile).seconds);

    DetailedSimulator ss(small), sb(big);
    EXPECT_GT(ss.simulate(exec, d).seconds,
              sb.simulate(exec, d).seconds);
}

TEST_F(ModelConsistency, BothModelsSlowDownAtLowerClock)
{
    isa::KernelSource src;
    src.name = "mc_freq";
    src.templateName = "julia";
    isa::KernelBinary bin = workloads::TemplateJit().compile(src);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 1 << 14;
    d.simdWidth = 16;
    d.args = {(uint32_t)memory.allocate(1 << 20), 0x3f000000u,
              0x3e000000u};

    TrialConfig fast, slow;
    fast.noiseSigma = slow.noiseSigma = 0.0;
    fast.freqMhz = 1150.0;
    slow.freqMhz = 350.0;

    ExecProfile profile = exec.run(d, Executor::Mode::Fast);
    TimingModel mf(config, fast), ms(config, slow);
    EXPECT_GT(ms.kernelTime(profile).seconds,
              mf.kernelTime(profile).seconds);

    DetailedSimulator sf(config, 1150.0), ss(config, 350.0);
    EXPECT_GT(ss.simulate(exec, d).seconds,
              sf.simulate(exec, d).seconds);
}

} // anonymous namespace
} // namespace gt::gpu
