/**
 * @file
 * Tests for the control-relevance (backward slice) analysis that
 * powers the executor's fast mode.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/builder.hh"
#include "isa/slice.hh"

namespace gt::isa
{
namespace
{

/** Count relevant instructions of a given opcode. */
uint64_t
relevantOf(const KernelBinary &bin, const Relevance &rel, Opcode op)
{
    uint64_t n = 0;
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            if (block.instrs[i].op == op &&
                rel.relevant[block.id][i]) {
                ++n;
            }
        }
    }
    return n;
}

TEST(Slice, LoopCounterChainIsRelevant)
{
    KernelBuilder b("k", 0);
    Reg c = b.reg(), x = b.reg();
    b.mov(x, imm(0), 16);
    b.beginLoop(c, imm(10));
    b.fmad(x, x, x, x, 16);
    b.endLoop();
    b.halt();
    KernelBinary bin = b.finish();

    Relevance rel = analyzeRelevance(bin);
    EXPECT_FALSE(rel.needsFullExec);
    EXPECT_FALSE(rel.threadDependent);
    // Loop add, cmp, brc and init mov of the counter are relevant.
    EXPECT_EQ(relevantOf(bin, rel, Opcode::Cmp), 1u);
    EXPECT_EQ(relevantOf(bin, rel, Opcode::Brc), 1u);
    EXPECT_GE(relevantOf(bin, rel, Opcode::Add), 1u);
    // The fmad body is dead to control flow.
    EXPECT_EQ(relevantOf(bin, rel, Opcode::FMad), 0u);
    EXPECT_LT(rel.relevantCount, rel.totalCount);
}

TEST(Slice, PureComputeKernelHasMinimalSlice)
{
    KernelBuilder b("compute", 1);
    Reg x = b.reg(), a = b.reg();
    b.mov(x, imm(1), 16);
    for (int i = 0; i < 20; ++i)
        b.fmul(x, x, x, 16);
    b.and_(a, b.globalIds(), imm(0xff), 16);
    b.shl(a, a, imm(2), 16);
    b.add(a, a, b.arg(0), 16);
    b.store(x, a, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    Relevance rel = analyzeRelevance(bin);
    EXPECT_FALSE(rel.needsFullExec);
    // Only halt is control; stores are not executed in fast mode.
    EXPECT_EQ(relevantOf(bin, rel, Opcode::FMul), 0u);
    EXPECT_EQ(relevantOf(bin, rel, Opcode::Send), 0u);
}

TEST(Slice, DataDependentControlNeedsFullExec)
{
    KernelBuilder b("datadep", 1);
    Reg a = b.reg(), v = b.reg();
    b.mov(a, b.arg(0), 1);
    b.load(v, a, 4, 1);
    Flag f = b.flag();
    b.cmp(CmpOp::Lt, f, v, imm(100), 1);
    b.brc(f, "end");
    b.label("end");
    b.halt();
    KernelBinary bin = b.finish();

    Relevance rel = analyzeRelevance(bin);
    EXPECT_TRUE(rel.needsFullExec);
}

TEST(Slice, ThreadDependentControlDetected)
{
    KernelBuilder b("tdep", 0);
    Reg t = b.reg();
    b.and_(t, b.globalIds(), imm(1), 1);
    Flag f = b.flag();
    b.cmp(CmpOp::Eq, f, t, imm(0), 1);
    b.brc(f, "end");
    b.label("end");
    b.halt();
    KernelBinary bin = b.finish();

    Relevance rel = analyzeRelevance(bin);
    EXPECT_TRUE(rel.threadDependent);
    EXPECT_FALSE(rel.needsFullExec);
}

TEST(Slice, ArgDrivenControlIsThreadInvariant)
{
    KernelBuilder b("argdep", 1);
    Reg c = b.reg();
    b.beginLoop(c, b.arg(0));
    Reg x = b.reg();
    b.add(x, x, imm(1), 8);
    b.endLoop();
    b.halt();
    KernelBinary bin = b.finish();

    Relevance rel = analyzeRelevance(bin);
    EXPECT_FALSE(rel.threadDependent);
    EXPECT_FALSE(rel.needsFullExec);
}

TEST(Slice, InstrumentationAlwaysRelevant)
{
    KernelBuilder b("prof", 0);
    Reg x = b.reg();
    b.mov(x, imm(1), 16);
    b.halt();
    KernelBinary bin = b.finish();
    // Inject a counter by hand.
    Instruction prof;
    prof.op = Opcode::ProfCount;
    prof.simdWidth = 1;
    prof.profSlot = 0;
    prof.profArg = 1;
    bin.blocks[0].instrs.insert(bin.blocks[0].instrs.begin(), prof);

    Relevance rel = analyzeRelevance(bin);
    EXPECT_EQ(relevantOf(bin, rel, Opcode::ProfCount), 1u);
}

TEST(Slice, ProfAddPullsItsSourceIntoTheSlice)
{
    KernelBuilder b("profadd", 0);
    Reg x = b.reg();
    b.mul(x, imm(3), imm(5), 1);
    b.halt();
    KernelBinary bin = b.finish();
    Instruction prof;
    prof.op = Opcode::ProfAdd;
    prof.simdWidth = 1;
    prof.profSlot = 0;
    prof.src0 = Operand::fromReg(x.idx);
    bin.blocks[0].instrs.insert(bin.blocks[0].instrs.begin() + 1,
                                prof);

    Relevance rel = analyzeRelevance(bin);
    EXPECT_EQ(relevantOf(bin, rel, Opcode::Mul), 1u);
}

TEST(Slice, CountsAreConsistent)
{
    KernelBuilder b("counts", 2);
    Reg c = b.reg(), acc = b.reg(), a = b.reg(), v = b.reg();
    b.beginLoop(c, imm(100));
    b.and_(a, b.globalIds(), imm(0xff), 16);
    b.shl(a, a, imm(2), 16);
    b.add(a, a, b.arg(0), 16);
    b.load(v, a, 4, 16);
    b.fmad(acc, v, v, acc, 16);
    b.endLoop();
    b.and_(a, b.globalIds(), imm(0xff), 16);
    b.shl(a, a, imm(2), 16);
    b.add(a, a, b.arg(1), 16);
    b.store(acc, a, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    Relevance rel = analyzeRelevance(bin);
    EXPECT_EQ(rel.totalCount, bin.staticInstrCount());
    uint64_t counted = 0;
    for (const auto &flags : rel.relevant) {
        for (bool f : flags)
            counted += f;
    }
    EXPECT_EQ(counted, rel.relevantCount);
    EXPECT_GT(rel.relevantCount, 0u);
    EXPECT_LT(rel.relevantCount, rel.totalCount);
}

} // anonymous namespace
} // namespace gt::isa
