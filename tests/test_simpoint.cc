/**
 * @file
 * SimPoint-clustering tests: random projection, weighted k-means
 * recovery of separable populations, BIC model selection, and
 * representative/ratio invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "common/logging.hh"
#include "core/simpoint.hh"

namespace gt::core::simpoint
{
namespace
{

FeatureVector
vectorAround(Rng &rng, uint64_t base_key, double jitter)
{
    FeatureVector v;
    for (uint64_t k = 0; k < 8; ++k) {
        double value = 1.0 + (double)((base_key + k) % 5) +
            rng.nextGaussian(0.0, jitter);
        v.add(base_key * 100 + k, std::abs(value) + 0.01);
    }
    v.normalize();
    return v;
}

TEST(Projection, DeterministicAndSeparating)
{
    Rng rng(1);
    FeatureVector a = vectorAround(rng, 1, 0.0);
    FeatureVector b = vectorAround(rng, 2, 0.0);
    Point pa1 = project(a);
    Point pa2 = project(a);
    Point pb = project(b);
    EXPECT_EQ(pa1, pa2);
    double d = 0.0;
    for (int i = 0; i < projectedDims; ++i)
        d += (pa1[i] - pb[i]) * (pa1[i] - pb[i]);
    EXPECT_GT(d, 1e-6);
}

TEST(Projection, LinearInTheInput)
{
    FeatureVector v;
    v.add(7, 2.0);
    v.add(9, 3.0);
    FeatureVector v2;
    v2.add(7, 4.0);
    v2.add(9, 6.0);
    Point p = project(v);
    Point p2 = project(v2);
    for (int i = 0; i < projectedDims; ++i)
        EXPECT_NEAR(p2[i], 2.0 * p[i], 1e-12);
}

TEST(Cluster, RecoversWellSeparatedGroups)
{
    Rng rng(7);
    std::vector<FeatureVector> vectors;
    std::vector<double> weights;
    std::vector<int> truth;
    for (int g = 0; g < 3; ++g) {
        for (int i = 0; i < 30; ++i) {
            vectors.push_back(
                vectorAround(rng, (uint64_t)g + 1, 0.01));
            weights.push_back(100.0);
            truth.push_back(g);
        }
    }

    Clustering c = cluster(vectors, weights);
    EXPECT_GE(c.k, 3);
    // Same-group points share clusters; cross-group points do not.
    for (size_t i = 0; i < vectors.size(); ++i) {
        for (size_t j = i + 1; j < vectors.size(); ++j) {
            if (truth[i] == truth[j]) {
                EXPECT_EQ(c.assignment[i], c.assignment[j]);
            } else {
                EXPECT_NE(c.assignment[i], c.assignment[j]);
            }
        }
    }
}

TEST(Cluster, RespectsMaxK)
{
    Rng rng(11);
    std::vector<FeatureVector> vectors;
    std::vector<double> weights;
    // 20 well-separated groups but maxK = 10.
    for (int g = 0; g < 20; ++g) {
        for (int i = 0; i < 4; ++i) {
            vectors.push_back(
                vectorAround(rng, (uint64_t)g + 1, 0.005));
            weights.push_back(1.0);
        }
    }
    ClusterOptions opts;
    opts.maxK = 10;
    Clustering c = cluster(vectors, weights, opts);
    EXPECT_LE(c.k, 10);
    EXPECT_GE(c.k, 2);
}

TEST(Cluster, IdenticalPointsYieldOneCluster)
{
    FeatureVector v;
    v.add(1, 0.5);
    v.add(2, 0.5);
    std::vector<FeatureVector> vectors(50, v);
    std::vector<double> weights(50, 10.0);
    Clustering c = cluster(vectors, weights);
    // BIC prefers the simplest model for indistinguishable points.
    EXPECT_EQ(c.k, 1);
    EXPECT_NEAR(c.weight[0], 1.0, 1e-12);
}

TEST(Cluster, SinglePoint)
{
    FeatureVector v;
    v.add(1, 1.0);
    Clustering c = cluster({v}, {5.0});
    EXPECT_EQ(c.k, 1);
    EXPECT_EQ(c.representative[0], 0u);
    EXPECT_DOUBLE_EQ(c.weight[0], 1.0);
}

TEST(Cluster, RatiosArePartitionOfWeight)
{
    Rng rng(13);
    std::vector<FeatureVector> vectors;
    std::vector<double> weights;
    for (int g = 0; g < 4; ++g) {
        for (int i = 0; i < 10; ++i) {
            vectors.push_back(
                vectorAround(rng, (uint64_t)g + 1, 0.02));
            weights.push_back((double)(g + 1));
        }
    }
    Clustering c = cluster(vectors, weights);
    double sum = 0.0;
    for (double w : c.weight) {
        EXPECT_GT(w, 0.0);
        sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Representatives are valid indices assigned to their clusters.
    ASSERT_EQ(c.representative.size(), (size_t)c.k);
    for (int cl = 0; cl < c.k; ++cl) {
        uint64_t rep = c.representative[(size_t)cl];
        ASSERT_LT(rep, vectors.size());
        EXPECT_EQ(c.assignment[rep], cl);
    }
}

TEST(Cluster, WeightsInfluenceRatios)
{
    Rng rng(17);
    std::vector<FeatureVector> vectors;
    std::vector<double> weights;
    // Group 0 carries 9x the weight of group 1.
    for (int i = 0; i < 20; ++i) {
        vectors.push_back(vectorAround(rng, 1, 0.01));
        weights.push_back(9.0);
    }
    for (int i = 0; i < 20; ++i) {
        vectors.push_back(vectorAround(rng, 2, 0.01));
        weights.push_back(1.0);
    }
    Clustering c = cluster(vectors, weights);
    ASSERT_GE(c.k, 2);
    // One cluster's ratio is ~0.9.
    double max_w = 0.0;
    for (double w : c.weight)
        max_w = std::max(max_w, w);
    EXPECT_NEAR(max_w, 0.9, 0.05);
}

TEST(Cluster, DeterministicForSameSeed)
{
    Rng rng(19);
    std::vector<FeatureVector> vectors;
    std::vector<double> weights;
    for (int i = 0; i < 60; ++i) {
        vectors.push_back(
            vectorAround(rng, (uint64_t)(i % 5) + 1, 0.05));
        weights.push_back(1.0 + i);
    }
    Clustering a = cluster(vectors, weights);
    Clustering b = cluster(vectors, weights);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.representative, b.representative);
}

TEST(Cluster, SeedChangesAreTolerated)
{
    Rng rng(23);
    std::vector<FeatureVector> vectors;
    std::vector<double> weights;
    for (int g = 0; g < 3; ++g) {
        for (int i = 0; i < 15; ++i) {
            vectors.push_back(
                vectorAround(rng, (uint64_t)g + 1, 0.01));
            weights.push_back(1.0);
        }
    }
    ClusterOptions o1, o2;
    o1.seed = 111;
    o2.seed = 222;
    Clustering a = cluster(vectors, weights, o1);
    Clustering b = cluster(vectors, weights, o2);
    // Different seeds may relabel clusters but must find the same
    // structure for clean data.
    EXPECT_EQ(a.k, b.k);
}

TEST(Cluster, GuardsBadInput)
{
    setLogQuiet(true);
    FeatureVector v;
    v.add(1, 1.0);
    EXPECT_THROW(cluster({}, {}), PanicError);
    EXPECT_THROW(cluster({v}, {}), PanicError);
    EXPECT_THROW(cluster({v}, {0.0}), PanicError);
    EXPECT_THROW(cluster({v}, {-1.0}), PanicError);
    setLogQuiet(false);
}

TEST(Cluster, MoreClustersForMoreStructure)
{
    // A population with 6 genuinely distinct behaviours should earn
    // more clusters than a homogeneous one of the same size.
    Rng rng(29);
    std::vector<FeatureVector> varied, uniform;
    std::vector<double> weights;
    for (int i = 0; i < 60; ++i) {
        varied.push_back(
            vectorAround(rng, (uint64_t)(i % 6) + 1, 0.01));
        uniform.push_back(vectorAround(rng, 1, 0.01));
        weights.push_back(1.0);
    }
    Clustering cv = cluster(varied, weights);
    Clustering cu = cluster(uniform, weights);
    EXPECT_GT(cv.k, cu.k);
}

} // anonymous namespace
} // namespace gt::core::simpoint
