/**
 * @file
 * Timing-model tests: roofline behaviour, frequency and EU scaling
 * (the mechanisms behind the paper's Fig. 8 validations), noise
 * determinism, and the LuxMark-style score calibration.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/luxmark.hh"
#include "gpu/timing.hh"

namespace gt::gpu
{
namespace
{

ExecProfile
computeBoundProfile()
{
    ExecProfile p;
    p.numThreads = 4096;
    p.dynInstrs = 1'000'000'000;
    p.threadCycles = 2e9;
    p.sendCount = 1000;
    p.bytesRead = 64'000;
    p.bytesWritten = 0;
    return p;
}

ExecProfile
memoryBoundProfile()
{
    ExecProfile p;
    p.numThreads = 4096;
    p.dynInstrs = 10'000'000;
    p.threadCycles = 2e7;
    p.sendCount = 5'000'000;
    p.bytesRead = 8'000'000'000ull;
    p.bytesWritten = 2'000'000'000ull;
    return p;
}

TrialConfig
noiseless()
{
    TrialConfig t;
    t.noiseSigma = 0.0;
    return t;
}

TEST(Timing, MoreWorkTakesLonger)
{
    TimingModel model(DeviceConfig::hd4000(), noiseless());
    ExecProfile small = computeBoundProfile();
    ExecProfile big = small;
    big.threadCycles *= 4.0;
    EXPECT_GT(model.kernelTime(big).seconds,
              model.kernelTime(small).seconds);
}

TEST(Timing, ComputeBoundScalesWithFrequency)
{
    TrialConfig fast = noiseless();
    TrialConfig slow = noiseless();
    slow.freqMhz = 575.0; // half the HD4000 clock
    TimingModel mf(DeviceConfig::hd4000(), fast);
    TimingModel ms(DeviceConfig::hd4000(), slow);

    ExecProfile p = computeBoundProfile();
    double tf = mf.kernelTime(p).seconds;
    double ts = ms.kernelTime(p).seconds;
    // Compute-bound work takes ~2x longer at half the clock
    // (dispatch overhead dilutes it slightly).
    EXPECT_GT(ts / tf, 1.8);
    EXPECT_LT(ts / tf, 2.1);
}

TEST(Timing, MemoryBoundInsensitiveToFrequency)
{
    TrialConfig slow = noiseless();
    slow.freqMhz = 575.0;
    TimingModel mf(DeviceConfig::hd4000(), noiseless());
    TimingModel ms(DeviceConfig::hd4000(), slow);

    ExecProfile p = memoryBoundProfile();
    double tf = mf.kernelTime(p).seconds;
    double ts = ms.kernelTime(p).seconds;
    // DRAM bandwidth does not scale with GPU clock.
    EXPECT_LT(ts / tf, 1.1);
}

TEST(Timing, MoreEusShortenComputeBoundKernels)
{
    DeviceConfig ivb = DeviceConfig::hd4000();
    DeviceConfig hsw = DeviceConfig::hd4600();
    TrialConfig t = noiseless();
    t.freqMhz = 1150.0; // same clock isolates the EU count
    TimingModel mi(ivb, t);
    TimingModel mh(hsw, t);

    ExecProfile p = computeBoundProfile();
    EXPECT_GT(mi.kernelTime(p).seconds,
              mh.kernelTime(p).seconds);
}

TEST(Timing, LowConcurrencyLimitsEus)
{
    TimingModel model(DeviceConfig::hd4000(), noiseless());
    ExecProfile wide = computeBoundProfile();
    ExecProfile narrow = wide;
    narrow.numThreads = 1; // cannot fill the machine
    EXPECT_GT(model.kernelTime(narrow).seconds,
              model.kernelTime(wide).seconds);
}

TEST(Timing, RooflineComponentsReported)
{
    TimingModel model(DeviceConfig::hd4000(), noiseless());
    KernelTime t = model.kernelTime(memoryBoundProfile());
    EXPECT_GT(t.memorySeconds, t.computeSeconds);
    EXPECT_GE(t.seconds, t.memorySeconds);
    KernelTime c = model.kernelTime(computeBoundProfile());
    EXPECT_GT(c.computeSeconds, c.memorySeconds);
}

TEST(Timing, NoiseIsDeterministicPerSeed)
{
    TrialConfig t;
    t.noiseSigma = 0.05;
    t.noiseSeed = 77;
    TimingModel a(DeviceConfig::hd4000(), t);
    TimingModel b(DeviceConfig::hd4000(), t);
    ExecProfile p = computeBoundProfile();
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(a.kernelTime(p).seconds,
                         b.kernelTime(p).seconds);
    }
}

TEST(Timing, DifferentSeedsDiffer)
{
    TrialConfig t1, t2;
    t1.noiseSigma = t2.noiseSigma = 0.05;
    t1.noiseSeed = 1;
    t2.noiseSeed = 2;
    TimingModel a(DeviceConfig::hd4000(), t1);
    TimingModel b(DeviceConfig::hd4000(), t2);
    ExecProfile p = computeBoundProfile();
    EXPECT_NE(a.kernelTime(p).seconds, b.kernelTime(p).seconds);
}

TEST(Timing, NoiseIsSmallInRelativeTerms)
{
    TrialConfig t;
    t.noiseSigma = 0.01;
    TimingModel noisy(DeviceConfig::hd4000(), t);
    TimingModel clean(DeviceConfig::hd4000(), noiseless());
    ExecProfile p = computeBoundProfile();
    double base = clean.kernelTime(p).seconds;
    for (int i = 0; i < 50; ++i) {
        double v = noisy.kernelTime(p).seconds;
        EXPECT_NEAR(v / base, 1.0, 0.06);
    }
}

TEST(Timing, InvalidConfigurationsPanic)
{
    setLogQuiet(true);
    TrialConfig bad;
    bad.freqMhz = -5.0;
    EXPECT_THROW(TimingModel(DeviceConfig::hd4000(), bad),
                 PanicError);
    TrialConfig neg;
    neg.noiseSigma = -0.1;
    EXPECT_THROW(TimingModel(DeviceConfig::hd4000(), neg),
                 PanicError);
    setLogQuiet(false);
}

TEST(DeviceConfigTest, PresetsMatchPaperParameters)
{
    DeviceConfig ivb = DeviceConfig::hd4000();
    EXPECT_EQ(ivb.numEus, 16u);
    EXPECT_EQ(ivb.threadsPerEu, 8u);
    EXPECT_EQ(ivb.totalHwThreads(), 128u);
    EXPECT_DOUBLE_EQ(ivb.maxFreqMhz, 1150.0);
    // The paper quotes 332.8 peak GFLOPS for the HD4000.
    EXPECT_NEAR(ivb.peakGflops(), 332.8, 40.0);

    DeviceConfig hsw = DeviceConfig::hd4600();
    EXPECT_EQ(hsw.numEus, 20u);
}

TEST(LuxMark, CalibratedToPaperScores)
{
    // The paper measured 269 (HD4000) and 351 (HD4600).
    double ivb = luxmarkScore(DeviceConfig::hd4000());
    double hsw = luxmarkScore(DeviceConfig::hd4600());
    EXPECT_NEAR(ivb, 269.0, 40.0);
    EXPECT_GT(hsw, ivb * 1.15);
    EXPECT_LT(hsw, ivb * 1.60);
}

} // anonymous namespace
} // namespace gt::gpu
