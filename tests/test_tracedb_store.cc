/**
 * @file
 * Columnar trace-store tests: the on-disk backend must be bitwise
 * identical to the in-memory oracle on every accessor, the varint
 * encoder must round-trip its continuation boundaries exactly, and
 * truncated or corrupt files must fail with FatalError, never a
 * wild read — on synthetic traces, on every builtin kernel
 * template, and end-to-end through exploreConfigs at 1, 4, and
 * hardware thread counts.
 */

#include <cstdio>
#include <thread>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/varint.hh"
#include "core/explorer.hh"
#include "core/feature_engine.hh"
#include "core/pipeline.hh"
#include "core/trace_db.hh"
#include "core/trace_store.hh"
#include "ocl/runtime.hh"
#include "workloads/templates.hh"
#include "workloads/workload.hh"

namespace gt::core
{
namespace
{

// --- varint boundaries -------------------------------------------

TEST(Varint, RoundTripsContinuationBoundaries)
{
    // One value per interesting width: each 7-bit group boundary
    // (127/128, 2^14 - 1 / 2^14), the 2^32 seam, and the 64-bit top.
    const std::pair<uint64_t, size_t> cases[] = {
        {0, 1},
        {1, 1},
        {127, 1},
        {128, 2},
        {129, 2},
        {(1u << 14) - 1, 2},
        {1u << 14, 3},
        {(1ull << 32) - 1, 5},
        {1ull << 32, 5},
        {(1ull << 35) - 1, 5},
        {1ull << 35, 6},
        {UINT64_MAX, 10},
    };
    for (const auto &[value, bytes] : cases) {
        std::vector<uint8_t> buf;
        putVarint(buf, value);
        EXPECT_EQ(buf.size(), bytes) << value;
        ByteReader reader(buf.data(), buf.data() + buf.size(),
                          "test");
        EXPECT_EQ(reader.getVarint(), value);
        reader.expectDone();
    }
    // All cases packed back to back decode in order.
    std::vector<uint8_t> buf;
    for (const auto &[value, bytes] : cases)
        putVarint(buf, value);
    ByteReader reader(buf.data(), buf.data() + buf.size(), "test");
    for (const auto &[value, bytes] : cases)
        EXPECT_EQ(reader.getVarint(), value);
    reader.expectDone();
}

TEST(Varint, TruncationAndOverflowAreFatal)
{
    setLogQuiet(true);
    std::vector<uint8_t> buf;
    putVarint(buf, 1ull << 32);
    {
        // Drop the terminating byte: the continuation bit now runs
        // off the region.
        ByteReader reader(buf.data(), buf.data() + buf.size() - 1,
                          "test");
        EXPECT_THROW(reader.getVarint(), FatalError);
    }
    {
        std::vector<uint8_t> wide(11, 0xff);
        ByteReader reader(wide.data(), wide.data() + wide.size(),
                          "test");
        EXPECT_THROW(reader.getVarint(), FatalError);
    }
    {
        std::vector<uint8_t> one{42};
        ByteReader reader(one.data(), one.data() + one.size(),
                          "test");
        EXPECT_THROW(reader.getBytes(nullptr, 2), FatalError);
    }
    {
        std::vector<uint8_t> big;
        putVarint(big, 1000);
        ByteReader reader(big.data(), big.data() + big.size(),
                          "test");
        EXPECT_THROW(reader.getCount(999), FatalError);
    }
    {
        std::vector<uint8_t> two{1, 2};
        ByteReader reader(two.data(), two.data() + two.size(),
                          "test");
        reader.getVarint();
        EXPECT_THROW(reader.expectDone(), FatalError);
    }
    setLogQuiet(false);
}

// --- synthetic traces --------------------------------------------

gtpin::DispatchProfile
makeProfile(uint64_t seq, uint64_t instrs, uint32_t kernel_id,
            Rng &rng)
{
    gtpin::DispatchProfile p;
    p.seq = seq;
    p.kernelId = kernel_id;
    p.kernelName = "kern_" + std::to_string(kernel_id);
    p.globalWorkSize = 16 + (rng.next() % 4096);
    p.argsHash = rng.next();
    p.args.resize(rng.next() % 5);
    for (uint32_t &a : p.args)
        a = (uint32_t)rng.next();
    p.instrs = instrs;
    size_t blocks = rng.next() % 7; // including block-free kernels
    p.blockCounts.resize(blocks);
    p.blockLens.resize(blocks);
    p.blockReadBytes.resize(blocks);
    p.blockWriteBytes.resize(blocks);
    for (size_t b = 0; b < blocks; ++b) {
        p.blockCounts[b] = rng.next() % 100000;
        p.blockLens[b] = (uint32_t)(rng.next() % 64);
        p.blockReadBytes[b] = (uint32_t)(rng.next() % 4096);
        p.blockWriteBytes[b] = (uint32_t)(rng.next() % 4096);
    }
    p.bytesRead = rng.next() % (1ull << 40);
    p.bytesWritten = rng.next() % (1ull << 33);
    return p;
}

/** A deterministic joined input: @p n dispatches, a sync roughly
 * every @p sync_every kernels, instruction counts sweeping the
 * varint continuation boundaries. */
struct SyntheticTrace
{
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    std::vector<ocl::ApiCallRecord> calls;
};

SyntheticTrace
makeTrace(uint64_t n, uint64_t sync_every, uint64_t seed = 1234)
{
    // Land exactly on the LEB128 group boundaries too.
    const uint64_t boundary[] = {0,   1,          127,
                                 128, (1u << 14), (1ull << 32)};
    Rng rng(seed);
    SyntheticTrace t;
    uint64_t idx = 0;
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t instrs = (i % 7 == 3)
                              ? boundary[i % 6]
                              : rng.next() % (1ull << 20);
        t.profiles.push_back(
            makeProfile(i, instrs, (uint32_t)(i % 5), rng));

        cfl::KernelTiming timing;
        timing.seq = i;
        timing.kernelName = t.profiles.back().kernelName;
        // Full-entropy mantissas so any re-summation drift or byte
        // swap in the seconds column shows up as bitwise inequality.
        timing.seconds =
            (double)(rng.next() >> 11) * 0x1.0p-53 * 1e-3;
        t.timings.push_back(timing);

        ocl::ApiCallRecord call;
        call.callIndex = idx++;
        call.id = ocl::ApiCallId::EnqueueNDRangeKernel;
        call.dispatchSeq = i;
        t.calls.push_back(call);
        if ((i + 1) % sync_every == 0) {
            ocl::ApiCallRecord sync;
            sync.callIndex = idx++;
            sync.id = ocl::ApiCallId::Finish;
            t.calls.push_back(sync);
        }
    }
    return t;
}

void
expectProfilesEqual(const gtpin::DispatchProfile &a,
                    const gtpin::DispatchProfile &b)
{
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.kernelId, b.kernelId);
    EXPECT_EQ(a.kernelName, b.kernelName);
    EXPECT_EQ(a.globalWorkSize, b.globalWorkSize);
    EXPECT_EQ(a.argsHash, b.argsHash);
    EXPECT_EQ(a.args, b.args);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.blockCounts, b.blockCounts);
    EXPECT_EQ(a.blockLens, b.blockLens);
    EXPECT_EQ(a.blockReadBytes, b.blockReadBytes);
    EXPECT_EQ(a.blockWriteBytes, b.blockWriteBytes);
    EXPECT_EQ(a.bytesRead, b.bytesRead);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
}

/** Every public accessor, both backends, bitwise. */
void
expectDatabasesEqual(const TraceDatabase &mem,
                     const TraceDatabase &col)
{
    ASSERT_EQ(mem.numDispatches(), col.numDispatches());
    EXPECT_EQ(mem.totalInstrs(), col.totalInstrs());
    EXPECT_EQ(mem.totalSeconds(), col.totalSeconds()); // bitwise
    EXPECT_EQ(mem.numSyncEpochs(), col.numSyncEpochs());
    if (mem.totalInstrs() > 0)
        EXPECT_EQ(mem.measuredSpi(), col.measuredSpi()); // bitwise

    const uint64_t n = mem.numDispatches();
    for (uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(mem.seconds(i), col.seconds(i)); // bitwise
        EXPECT_EQ(mem.secondsData()[i], col.secondsData()[i]);
        EXPECT_EQ(mem.syncEpoch(i), col.syncEpoch(i));
        expectProfilesEqual(mem.profileAt(i), col.profileAt(i));
    }

    // Ranges of every small width from every start: crosses every
    // block boundary both inside and at the edges.
    for (uint64_t width : {0u, 1u, 2u, 3u, 4u, 7u, 16u, 63u}) {
        for (uint64_t first = 0; first < n; ++first) {
            uint64_t last = std::min(n - 1, first + width);
            EXPECT_EQ(mem.rangeInstrs(first, last),
                      col.rangeInstrs(first, last));
            EXPECT_EQ(mem.rangeSeconds(first, last),
                      col.rangeSeconds(first, last)); // bitwise
        }
    }
    if (n > 0) {
        EXPECT_EQ(mem.rangeInstrs(0, n - 1), mem.totalInstrs());
        EXPECT_EQ(col.rangeInstrs(0, n - 1), col.totalInstrs());
    }
}

TraceDatabase
buildFrom(const SyntheticTrace &t, TraceDbBackend backend,
          uint32_t block_size = trace_store::defaultBlockSize)
{
    auto profiles = t.profiles; // build() consumes them
    return TraceDatabase::build(std::move(profiles), t.timings,
                                t.calls, backend, block_size);
}

TEST(TraceStore, EmptyWorkload)
{
    setLogQuiet(true);
    SyntheticTrace t;
    TraceDatabase db = buildFrom(t, TraceDbBackend::Columnar);
    EXPECT_EQ(db.numDispatches(), 0u);
    EXPECT_EQ(db.totalInstrs(), 0u);
    EXPECT_EQ(db.totalSeconds(), 0.0);
    EXPECT_EQ(db.numSyncEpochs(), 0u);
    EXPECT_THROW(db.measuredSpi(), PanicError);
    EXPECT_EQ(db.memoryFootprint().fileBytes, 0u);
    setLogQuiet(false);
}

TEST(TraceStore, SingleDispatch)
{
    setLogQuiet(true);
    SyntheticTrace t = makeTrace(1, 1);
    TraceDatabase mem = buildFrom(t, TraceDbBackend::Mem);
    TraceDatabase col = buildFrom(t, TraceDbBackend::Columnar);
    expectDatabasesEqual(mem, col);
    EXPECT_EQ(col.backend(), TraceDbBackend::Columnar);
    EXPECT_GT(col.memoryFootprint().fileBytes, 0u);
    setLogQuiet(false);
}

class BlockSizeTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BlockSizeTest, SyntheticDifferentialBitwise)
{
    setLogQuiet(true);
    // 421 dispatches: prime, so it never divides evenly into blocks
    // and the last block is always partial.
    SyntheticTrace t = makeTrace(421, 13);
    TraceDatabase mem = buildFrom(t, TraceDbBackend::Mem);
    TraceDatabase col =
        buildFrom(t, TraceDbBackend::Columnar, GetParam());
    expectDatabasesEqual(mem, col);
    setLogQuiet(false);
}

// Block size 1 (every dispatch its own block), tiny sizes around
// the range widths above, one that divides 421's neighbors, and the
// default.
INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizeTest,
                         ::testing::Values(1u, 3u, 4u, 64u, 256u),
                         [](const auto &info) {
                             return "block" +
                                    std::to_string(info.param);
                         });

TEST(TraceStore, FootprintShrinksAndIsAccounted)
{
    setLogQuiet(true);
    SyntheticTrace t = makeTrace(4096, 32);
    TraceDatabase mem = buildFrom(t, TraceDbBackend::Mem);
    TraceDatabase col = buildFrom(t, TraceDbBackend::Columnar);

    TraceDbFootprint fm = mem.memoryFootprint();
    TraceDbFootprint fc = col.memoryFootprint();
    EXPECT_EQ(fm.fileBytes, 0u);
    EXPECT_EQ(fm.residentBytes,
              fm.recordBytes + fm.profileBytes + fm.columnBytes);
    EXPECT_GT(fm.recordBytes, 0u);
    EXPECT_GT(fm.profileBytes, 0u);

    EXPECT_GT(fc.fileBytes, 0u);
    EXPECT_GT(fc.profileBytes, 0u);
    EXPECT_EQ(fc.recordBytes, 0u);
    // The resident reduction is the point of the backend.
    EXPECT_LT(fc.residentBytes, fm.residentBytes / 5);
    // Touch a profile: the thread cache now holds a decoded block.
    (void)col.profileAt(0);
    EXPECT_GT(col.memoryFootprint().cacheBytes, 0u);
    setLogQuiet(false);
}

TEST(TraceStore, ThreadCacheDropsSlotsOfDestroyedStores)
{
    setLogQuiet(true);
    SyntheticTrace t = makeTrace(256, 16);
    TraceDatabase live = buildFrom(t, TraceDbBackend::Columnar);
    (void)live.profileAt(0);
    uint64_t with_live = trace_store::threadCacheResidentBytes();
    EXPECT_GT(with_live, 0u);

    {
        TraceDatabase dead = buildFrom(t, TraceDbBackend::Columnar);
        (void)dead.profileAt(0);
        (void)dead.profileAt(200);
        // Two stores' decoded blocks coexist in this thread's cache.
        EXPECT_GT(trace_store::threadCacheResidentBytes(),
                  with_live);
    }

    // Destroying a store invalidates its slots; the surviving
    // store's stay resident and serviceable.
    EXPECT_EQ(trace_store::threadCacheResidentBytes(), with_live);
    expectProfilesEqual(live.profileAt(100), t.profiles[100]);

    TraceDatabase mem = buildFrom(t, TraceDbBackend::Mem);
    expectDatabasesEqual(mem, live);
    setLogQuiet(false);
}

TEST(TraceStore, ConcurrentReadersSeeIdenticalData)
{
    setLogQuiet(true);
    SyntheticTrace t = makeTrace(300, 10);
    TraceDatabase mem = buildFrom(t, TraceDbBackend::Mem);
    TraceDatabase col = buildFrom(t, TraceDbBackend::Columnar, 8);

    // Each thread walks a different stride so block decodes overlap
    // and interleave across the shared store.
    auto walk = [&](uint64_t stride) {
        for (uint64_t pass = 0; pass < 4; ++pass) {
            for (uint64_t i = pass; i < col.numDispatches();
                 i += stride) {
                ASSERT_EQ(col.profileAt(i).instrs,
                          mem.profileAt(i).instrs);
                ASSERT_EQ(col.seconds(i), mem.seconds(i));
                ASSERT_EQ(col.rangeInstrs(0, i),
                          mem.rangeInstrs(0, i));
            }
        }
    };
    std::vector<std::thread> threads;
    for (uint64_t s : {1u, 2u, 3u, 5u})
        threads.emplace_back(walk, s);
    for (auto &thread : threads)
        thread.join();
    setLogQuiet(false);
}

// --- the persistent file format ----------------------------------

class StoreFileTest : public ::testing::Test
{
  protected:
    StoreFileTest()
        : path(::testing::TempDir() + "tracedb_store_test.gtcol")
    {
    }

    ~StoreFileTest() override { std::remove(path.c_str()); }

    /** Write the synthetic trace's joined records to `path`. */
    std::vector<DispatchRecord>
    writeRecords(uint64_t n)
    {
        SyntheticTrace t = makeTrace(n, 7);
        std::vector<DispatchRecord> records;
        uint64_t epoch = 0;
        for (uint64_t i = 0; i < n; ++i) {
            DispatchRecord rec;
            rec.profile = t.profiles[i];
            rec.seconds = t.timings[i].seconds;
            rec.syncEpoch = epoch;
            if ((i + 1) % 7 == 0)
                ++epoch;
            records.push_back(std::move(rec));
        }
        trace_store::ColumnarOptions options;
        options.blockSize = 16;
        trace_store::ColumnarStore::writeFile(records, path,
                                              options);
        return records;
    }

    std::vector<uint8_t>
    readAll()
    {
        FILE *f = std::fopen(path.c_str(), "rb");
        GT_ASSERT(f, "cannot reopen ", path);
        std::vector<uint8_t> bytes;
        uint8_t buf[4096];
        size_t got;
        while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.insert(bytes.end(), buf, buf + got);
        std::fclose(f);
        return bytes;
    }

    void
    writeAll(const std::vector<uint8_t> &bytes)
    {
        FILE *f = std::fopen(path.c_str(), "wb");
        GT_ASSERT(f, "cannot rewrite ", path);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }

    std::string path;
};

TEST_F(StoreFileTest, WriteOpenRoundTripsEveryField)
{
    setLogQuiet(true);
    auto records = writeRecords(100);
    auto store = trace_store::ColumnarStore::openFile(path);
    ASSERT_EQ(store->numDispatches(), records.size());
    uint64_t prefix = 0;
    for (uint64_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(store->seconds(i), records[i].seconds);
        EXPECT_EQ(store->syncEpoch(i), records[i].syncEpoch);
        EXPECT_EQ(store->instrPrefixAt(i), prefix);
        expectProfilesEqual(store->profileAt(i),
                            records[i].profile);
        prefix += records[i].profile.instrs;
    }
    EXPECT_EQ(store->instrPrefixAt(records.size()), prefix);
    EXPECT_EQ(store->totalInstrs(), prefix);
    setLogQuiet(false);
}

TEST_F(StoreFileTest, TruncatedFileIsFatal)
{
    setLogQuiet(true);
    writeRecords(100);
    std::vector<uint8_t> bytes = readAll();
    // Any truncation point must fail the header's fileBytes check
    // (or the header-size check) before any section is touched.
    for (size_t keep :
         {bytes.size() - 1, bytes.size() / 2, size_t{64}, size_t{0}}) {
        std::vector<uint8_t> cut(bytes.begin(),
                                 bytes.begin() + keep);
        writeAll(cut);
        EXPECT_THROW(trace_store::ColumnarStore::openFile(path),
                     FatalError)
            << "kept " << keep;
    }
    setLogQuiet(false);
}

TEST_F(StoreFileTest, BadMagicVersionAndPaddingAreFatal)
{
    setLogQuiet(true);
    writeRecords(10);
    std::vector<uint8_t> bytes = readAll();

    std::vector<uint8_t> mutated = bytes;
    mutated[0] ^= 0xff;
    writeAll(mutated);
    EXPECT_THROW(trace_store::ColumnarStore::openFile(path),
                 FatalError);

    // Version field sits right after the 8-byte magic.
    mutated = bytes;
    mutated[8] += 1;
    writeAll(mutated);
    EXPECT_THROW(trace_store::ColumnarStore::openFile(path),
                 FatalError);

    // Trailing garbage breaks the recorded-size check.
    mutated = bytes;
    mutated.push_back(0);
    writeAll(mutated);
    EXPECT_THROW(trace_store::ColumnarStore::openFile(path),
                 FatalError);
    setLogQuiet(false);
}

// --- every builtin kernel template -------------------------------

class TemplateDiff : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TemplateDiff, MemAndColumnarAgreeBitwise)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);

    gtpin::KernelProfileTool tool;
    gtpin::GtPin pin;
    pin.addTool(&tool);
    pin.attach(driver);

    ocl::ClRuntime rt(driver);
    cfl::ApiTracer tracer;
    rt.addObserver(&tracer);

    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    isa::KernelSource src;
    src.name = "td_" + GetParam();
    src.templateName = GetParam();
    src.params = {8};
    ocl::Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    ocl::Kernel k = rt.createKernel(prog, src.name);
    ocl::Mem buf = rt.createBuffer(ctx, 1 << 20);
    const isa::KernelBinary &bin = driver.binary(0);
    for (uint32_t a = 0; a < bin.numArgs; ++a)
        rt.setKernelArg(k, a, buf);
    rt.enqueueNDRangeKernel(q, k, 64);
    rt.enqueueNDRangeKernel(q, k, 128);
    rt.finish(q);
    rt.enqueueNDRangeKernel(q, k, 64);
    rt.finish(q);
    pin.detach();

    auto profiles = tool.takeProfiles();
    auto copy = profiles;
    TraceDatabase mem = TraceDatabase::build(
        std::move(copy), tracer.kernelTimings(),
        tracer.callStream(), TraceDbBackend::Mem);
    // Block size 2: the three dispatches straddle a block boundary.
    TraceDatabase col = TraceDatabase::build(
        std::move(profiles), tracer.kernelTimings(),
        tracer.callStream(), TraceDbBackend::Columnar, 2);
    EXPECT_EQ(mem.numDispatches(), 3u);
    EXPECT_EQ(mem.numSyncEpochs(), 2u);
    expectDatabasesEqual(mem, col);
    setLogQuiet(false);
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, TemplateDiff,
    ::testing::ValuesIn(workloads::builtinTemplates().templateNames()),
    [](const auto &info) { return info.param; });

// --- end-to-end exploration --------------------------------------

TEST(TraceStoreExplore, ExplorationBitwiseAcrossBackendsAndThreads)
{
    setLogQuiet(true);
    const workloads::Workload *w =
        workloads::findWorkload("cb-histogram-buffer");
    ASSERT_NE(w, nullptr);
    ProfiledApp app = profileApp(*w);

    gpu::TrialConfig trial; // profileApp's default
    TraceDatabase mem =
        replayTrial(app.recording, gpu::DeviceConfig::hd4000(),
                    trial, TraceDbBackend::Mem);
    TraceDatabase col =
        replayTrial(app.recording, gpu::DeviceConfig::hd4000(),
                    trial, TraceDbBackend::Columnar);
    expectDatabasesEqual(mem, col);

    auto explore = [](const TraceDatabase &db, unsigned threads) {
        sched::ThreadPool pool(threads);
        simpoint::ClusterOptions options;
        options.pool = &pool;
        FeatureEngine engine(db, FeatureBackend::Flat);
        return exploreConfigs(db, options, 0, &engine);
    };

    Exploration want = explore(mem, 1);
    for (unsigned threads :
         {1u, 4u, std::max(1u, std::thread::hardware_concurrency())}) {
        Exploration got = explore(col, threads);
        ASSERT_EQ(want.results.size(), got.results.size());
        for (size_t i = 0; i < want.results.size(); ++i) {
            const ConfigResult &a = want.results[i];
            const ConfigResult &b = got.results[i];
            EXPECT_EQ(a.selection.scheme, b.selection.scheme);
            EXPECT_EQ(a.selection.feature, b.selection.feature);
            EXPECT_EQ(a.selection.selected, b.selection.selected);
            EXPECT_EQ(a.selection.ratios,
                      b.selection.ratios); // bitwise
            EXPECT_EQ(a.selection.selectedInstrs,
                      b.selection.selectedInstrs);
            EXPECT_EQ(a.errorPct, b.errorPct); // bitwise
        }
    }
    setLogQuiet(false);
}

} // anonymous namespace
} // namespace gt::core
