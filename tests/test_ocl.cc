/**
 * @file
 * OpenCL-runtime tests: object lifecycle, the paper's call
 * categorization (Section II's seven synchronization calls),
 * asynchronous queue semantics, argument validation, and observer
 * delivery.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ocl/runtime.hh"
#include "workloads/templates.hh"

namespace gt::ocl
{
namespace
{

class OclTest : public ::testing::Test
{
  protected:
    OclTest()
        : jit(), driver(gpu::DeviceConfig::hd4000(), jit),
          rt(driver)
    {}

    /** Create a built program with one trivial stream kernel. */
    Kernel
    makeKernel(Context ctx, const std::string &name = "k0")
    {
        isa::KernelSource src;
        src.name = name;
        src.templateName = "stream";
        src.params = {4, 0xff, 16};
        Program prog = rt.createProgramWithSource(ctx, {src});
        rt.buildProgram(prog);
        return rt.createKernel(prog, name);
    }

    workloads::TemplateJit jit;
    GpuDriver driver;
    ClRuntime rt;
};

// --- categorization (Fig. 3a / Section II) ---------------------------

TEST(ApiCategory, ExactlySevenSynchronizationCalls)
{
    int sync = 0, kernel = 0;
    for (int i = 0; i < numApiCalls; ++i) {
        switch (apiCategory((ApiCallId)i)) {
          case ApiCategory::Synchronization:
            ++sync;
            break;
          case ApiCategory::Kernel:
            ++kernel;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(sync, 7);
    EXPECT_EQ(kernel, 1);
}

TEST(ApiCategory, TheSevenArePaperList)
{
    for (ApiCallId id :
         {ApiCallId::Finish, ApiCallId::Flush,
          ApiCallId::WaitForEvents, ApiCallId::EnqueueReadBuffer,
          ApiCallId::EnqueueReadImage, ApiCallId::EnqueueCopyBuffer,
          ApiCallId::EnqueueCopyImageToBuffer}) {
        EXPECT_EQ(apiCategory(id), ApiCategory::Synchronization)
            << apiCallName(id);
    }
    EXPECT_EQ(apiCategory(ApiCallId::EnqueueNDRangeKernel),
              ApiCategory::Kernel);
    EXPECT_EQ(apiCategory(ApiCallId::SetKernelArg),
              ApiCategory::Other);
    EXPECT_EQ(apiCategory(ApiCallId::EnqueueWriteBuffer),
              ApiCategory::Other);
}

TEST(ApiCategory, NamesAreClPrefixed)
{
    for (int i = 0; i < numApiCalls; ++i) {
        std::string name = apiCallName((ApiCallId)i);
        EXPECT_EQ(name.rfind("cl", 0), 0u) << name;
    }
}

// --- lifecycle ----------------------------------------------------------

TEST_F(OclTest, BasicSetupSequence)
{
    EXPECT_EQ(rt.getPlatformIds(), 1u);
    EXPECT_EQ(rt.getDeviceIds(), 1u);
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem buf = rt.createBuffer(ctx, 4096);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 0x3f800000u);
    rt.setKernelArg(k, 3, 0u);
    rt.enqueueNDRangeKernel(q, k, 256);
    rt.finish(q);
    EXPECT_EQ(rt.dispatchCount(), 1u);
    EXPECT_GT(rt.apiCallCount(), 5u);
}

TEST_F(OclTest, AsyncDispatchDefersExecution)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem buf = rt.createBuffer(ctx, 4096);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 0u);
    rt.setKernelArg(k, 3, 0u);

    rt.enqueueNDRangeKernel(q, k, 256);
    rt.enqueueNDRangeKernel(q, k, 256);
    // Kernels wait in the queue until a sync call aligns devices.
    EXPECT_EQ(driver.dispatchCount(), 0u);
    rt.finish(q);
    EXPECT_EQ(driver.dispatchCount(), 2u);
}

/** Parameterized check: each of the seven sync calls drains. */
class SyncDrainTest
    : public OclTest,
      public ::testing::WithParamInterface<int>
{
};

TEST_P(SyncDrainTest, DrainsPendingKernels)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem a = rt.createBuffer(ctx, 4096);
    Mem b = rt.createBuffer(ctx, 4096);
    Mem img = rt.createImage2D(ctx, 16, 16, 4);
    rt.setKernelArg(k, 0, a);
    rt.setKernelArg(k, 1, b);
    rt.setKernelArg(k, 2, 0u);
    rt.setKernelArg(k, 3, 0u);
    rt.enqueueNDRangeKernel(q, k, 256);
    EXPECT_EQ(driver.dispatchCount(), 0u);

    switch (GetParam()) {
      case 0:
        rt.finish(q);
        break;
      case 1:
        rt.flush(q);
        break;
      case 2:
        rt.waitForEvents({});
        break;
      case 3:
        rt.enqueueReadBuffer(q, a, 0, 64);
        break;
      case 4:
        rt.enqueueReadImage(q, img);
        break;
      case 5:
        rt.enqueueCopyBuffer(q, a, b, 64);
        break;
      case 6:
        rt.enqueueCopyImageToBuffer(q, img, a);
        break;
    }
    EXPECT_EQ(driver.dispatchCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSevenSyncCalls, SyncDrainTest,
                         ::testing::Range(0, 7));

TEST_F(OclTest, WriteAndReadBufferRoundTrip)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Mem buf = rt.createBuffer(ctx, 256);
    std::vector<uint8_t> data{1, 2, 3, 4, 5};
    rt.enqueueWriteBuffer(q, buf, 16, data);
    std::vector<uint8_t> back = rt.enqueueReadBuffer(q, buf, 16, 5);
    EXPECT_EQ(back, data);
}

TEST_F(OclTest, FillBufferWritesPattern)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Mem buf = rt.createBuffer(ctx, 64);
    rt.enqueueFillBuffer(q, buf, 0xdeadbeefu, 0, 64);
    std::vector<uint8_t> back = rt.enqueueReadBuffer(q, buf, 0, 8);
    EXPECT_EQ(back[0], 0xef);
    EXPECT_EQ(back[3], 0xde);
    EXPECT_EQ(back[4], 0xef);
}

TEST_F(OclTest, CopyBufferMovesData)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Mem a = rt.createBuffer(ctx, 64);
    Mem b = rt.createBuffer(ctx, 64);
    rt.enqueueFillBuffer(q, a, 0x11111111u, 0, 64);
    rt.enqueueCopyBuffer(q, a, b, 64);
    std::vector<uint8_t> back = rt.enqueueReadBuffer(q, b, 0, 4);
    EXPECT_EQ(back[0], 0x11);
}

// --- validation ---------------------------------------------------------

TEST_F(OclTest, MissingArgumentPanicsAtEnqueue)
{
    setLogQuiet(true);
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    rt.setKernelArg(k, 0, 0u);
    // args 1 and 2 never set
    EXPECT_THROW(rt.enqueueNDRangeKernel(q, k, 256), PanicError);
    setLogQuiet(false);
}

TEST_F(OclTest, ArgIndexOutOfRangePanics)
{
    setLogQuiet(true);
    Context ctx = rt.createContext();
    Kernel k = makeKernel(ctx);
    EXPECT_THROW(rt.setKernelArg(k, 99, 0u), PanicError);
    setLogQuiet(false);
}

TEST_F(OclTest, UnknownKernelNameFatal)
{
    setLogQuiet(true);
    Context ctx = rt.createContext();
    isa::KernelSource src;
    src.name = "real";
    src.templateName = "stream";
    Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    EXPECT_THROW(rt.createKernel(prog, "imaginary"), FatalError);
    setLogQuiet(false);
}

TEST_F(OclTest, CreateKernelBeforeBuildPanics)
{
    setLogQuiet(true);
    Context ctx = rt.createContext();
    isa::KernelSource src;
    src.name = "k";
    src.templateName = "stream";
    Program prog = rt.createProgramWithSource(ctx, {src});
    EXPECT_THROW(rt.createKernel(prog, "k"), PanicError);
    setLogQuiet(false);
}

TEST_F(OclTest, OutOfBoundsReadPanics)
{
    setLogQuiet(true);
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Mem buf = rt.createBuffer(ctx, 64);
    EXPECT_THROW(rt.enqueueReadBuffer(q, buf, 32, 64), PanicError);
    setLogQuiet(false);
}

TEST_F(OclTest, UseAfterReleasePanics)
{
    setLogQuiet(true);
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Mem buf = rt.createBuffer(ctx, 64);
    rt.releaseMemObject(buf);
    EXPECT_THROW(rt.enqueueReadBuffer(q, buf, 0, 8), PanicError);
    setLogQuiet(false);
}

// --- observers and events -----------------------------------------------

class CountingObserver : public ApiObserver
{
  public:
    void
    onApiCall(const ApiCallRecord &rec) override
    {
        ++calls;
        last = rec;
    }
    void
    onDispatchExecuted(const DispatchResult &result) override
    {
        ++dispatches;
        lastResult = result;
    }
    uint64_t calls = 0;
    uint64_t dispatches = 0;
    ApiCallRecord last;
    DispatchResult lastResult;
};

TEST_F(OclTest, ObserverSeesEveryCallAndDispatch)
{
    CountingObserver obs;
    rt.addObserver(&obs);
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem buf = rt.createBuffer(ctx, 4096);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 0u);
    rt.setKernelArg(k, 3, 0u);
    rt.enqueueNDRangeKernel(q, k, 256);
    rt.finish(q);

    EXPECT_EQ(obs.calls, rt.apiCallCount());
    EXPECT_EQ(obs.dispatches, 1u);
    EXPECT_EQ(obs.lastResult.kernelName, "k0");
    EXPECT_EQ(obs.lastResult.globalSize, 256u);
    EXPECT_GT(obs.lastResult.profile.dynInstrs, 0u);
    EXPECT_GT(obs.lastResult.time.seconds, 0.0);

    rt.removeObserver(&obs);
    uint64_t before = obs.calls;
    rt.getPlatformIds();
    EXPECT_EQ(obs.calls, before);
}

TEST_F(OclTest, DispatchRecordsCarryGwsAndArgsHash)
{
    CountingObserver obs;
    rt.addObserver(&obs);
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem buf = rt.createBuffer(ctx, 4096);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 7u);
    rt.setKernelArg(k, 3, 0u);
    rt.enqueueNDRangeKernel(q, k, 512);
    ApiCallRecord enq = obs.last;
    EXPECT_EQ(enq.id, ApiCallId::EnqueueNDRangeKernel);
    EXPECT_EQ(enq.globalWorkSize, 512u);
    uint64_t h1 = enq.argsHash;

    rt.setKernelArg(k, 2, 8u);
    rt.enqueueNDRangeKernel(q, k, 512);
    EXPECT_NE(obs.last.argsHash, h1);
    rt.finish(q);
}

TEST_F(OclTest, EventProfilingReturnsKernelTime)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem buf = rt.createBuffer(ctx, 4096);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 0u);
    rt.setKernelArg(k, 3, 0u);
    Event ev = rt.enqueueNDRangeKernel(q, k, 256);
    EXPECT_EQ(rt.getEventProfilingInfo(ev), 0.0); // not yet run
    rt.finish(q);
    EXPECT_GT(rt.getEventProfilingInfo(ev), 0.0);
}

TEST_F(OclTest, TimelineAdvances)
{
    Context ctx = rt.createContext();
    CommandQueue q = rt.createCommandQueue(ctx);
    Kernel k = makeKernel(ctx);
    Mem buf = rt.createBuffer(ctx, 4096);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 0u);
    rt.setKernelArg(k, 3, 0u);
    double t0 = rt.deviceTimelineSeconds();
    rt.enqueueNDRangeKernel(q, k, 4096);
    rt.finish(q);
    EXPECT_GT(rt.deviceTimelineSeconds(), t0);
}

TEST_F(OclTest, BufferAddressesAreStable)
{
    Context ctx = rt.createContext();
    Mem a = rt.createBuffer(ctx, 100);
    Mem b = rt.createBuffer(ctx, 100);
    EXPECT_NE(rt.bufferAddress(a), rt.bufferAddress(b));
    EXPECT_EQ(rt.bufferSize(a), 100u);
}

} // anonymous namespace
} // namespace gt::ocl
