/**
 * @file
 * End-to-end pipeline tests: profileApp's cross-tool consistency
 * and replayTrial's determinism across trials, frequencies, and
 * architecture generations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/pipeline.hh"

namespace gt::core
{
namespace
{

const ProfiledApp &
gaussImage()
{
    static const ProfiledApp app = profileApp(
        *workloads::findWorkload("cb-gaussian-image"));
    return app;
}

TEST(Pipeline, ToolsAgreeOnTotals)
{
    const ProfiledApp &app = gaussImage();
    // The BB-counter tool, the kernel-profile tool (via the trace
    // database), and the opcode-mix tool measured the same run; all
    // three instruction totals must agree exactly.
    uint64_t class_total = 0;
    for (int c = 0; c < isa::numOpClasses; ++c)
        class_total += app.stats.classCounts[c];
    EXPECT_EQ(app.stats.dynInstrs, app.db.totalInstrs());
    EXPECT_EQ(class_total, app.db.totalInstrs());
}

TEST(Pipeline, ProfileIsDeterministic)
{
    const ProfiledApp &a = gaussImage();
    ProfiledApp b = profileApp(
        *workloads::findWorkload("cb-gaussian-image"));
    EXPECT_EQ(a.db.totalInstrs(), b.db.totalInstrs());
    EXPECT_EQ(a.stats.totalApiCalls, b.stats.totalApiCalls);
    EXPECT_DOUBLE_EQ(a.db.totalSeconds(), b.db.totalSeconds());
    EXPECT_EQ(a.recording.size(), b.recording.size());
}

TEST(Pipeline, ReplaySameTrialIsIdentical)
{
    const ProfiledApp &app = gaussImage();
    gpu::TrialConfig trial; // profileApp's default
    TraceDatabase db2 = replayTrial(
        app.recording, gpu::DeviceConfig::hd4000(), trial);
    EXPECT_EQ(db2.numDispatches(), app.db.numDispatches());
    EXPECT_EQ(db2.totalInstrs(), app.db.totalInstrs());
    EXPECT_EQ(db2.numSyncEpochs(), app.db.numSyncEpochs());
    // Note: profileApp attaches more tools than replayTrial, so the
    // instrumented timing differs slightly; instruction counts are
    // the application's own and must match exactly.
    for (uint64_t i = 0; i < db2.numDispatches(); ++i) {
        EXPECT_EQ(db2.profileAt(i).instrs,
                  app.db.profileAt(i).instrs);
        EXPECT_EQ(db2.profileAt(i).kernelName,
                  app.db.profileAt(i).kernelName);
        EXPECT_EQ(db2.syncEpoch(i), app.db.syncEpoch(i));
    }
}

TEST(Pipeline, ReplayTwiceSameSeedIsBitIdentical)
{
    const ProfiledApp &app = gaussImage();
    gpu::TrialConfig trial;
    trial.noiseSeed = 4242;
    TraceDatabase a = replayTrial(
        app.recording, gpu::DeviceConfig::hd4000(), trial);
    TraceDatabase b = replayTrial(
        app.recording, gpu::DeviceConfig::hd4000(), trial);
    ASSERT_EQ(a.numDispatches(), b.numDispatches());
    for (uint64_t i = 0; i < a.numDispatches(); ++i)
        EXPECT_DOUBLE_EQ(a.seconds(i), b.seconds(i));
}

TEST(Pipeline, LowerFrequencyRaisesSpi)
{
    const ProfiledApp &app = gaussImage();
    gpu::TrialConfig fast, slow;
    fast.freqMhz = 1150.0;
    slow.freqMhz = 350.0;
    TraceDatabase dbf = replayTrial(
        app.recording, gpu::DeviceConfig::hd4000(), fast);
    TraceDatabase dbs = replayTrial(
        app.recording, gpu::DeviceConfig::hd4000(), slow);
    EXPECT_GT(dbs.measuredSpi(), dbf.measuredSpi());
}

TEST(Pipeline, CrossArchitectureReplayKeepsCounts)
{
    const ProfiledApp &app = gaussImage();
    gpu::TrialConfig trial;
    TraceDatabase hsw = replayTrial(
        app.recording, gpu::DeviceConfig::hd4600(), trial);
    EXPECT_EQ(hsw.totalInstrs(), app.db.totalInstrs());
    EXPECT_EQ(hsw.numDispatches(), app.db.numDispatches());
}

TEST(Pipeline, CharacterizationMatchesTracerCategories)
{
    const ProfiledApp &app = gaussImage();
    EXPECT_NEAR(app.stats.fracKernel + app.stats.fracSync +
                    app.stats.fracOther,
                1.0, 1e-12);
    EXPECT_EQ(app.stats.kernelInvocations,
              app.recording.dispatchCount());
}

} // anonymous namespace
} // namespace gt::core
