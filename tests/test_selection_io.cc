/**
 * @file
 * Selection-artifact I/O tests: a saved selection must reload to a
 * functionally identical object (same projections on any trial), and
 * malformed artifacts must be rejected with user-level errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "core/pipeline.hh"
#include "core/selection_io.hh"

namespace gt::core
{
namespace
{

const ProfiledApp &
app()
{
    static const ProfiledApp a = profileApp(
        *workloads::findWorkload("cb-gaussian-image"));
    return a;
}

SubsetSelection
makeSelection()
{
    return selectSubset(app().db, IntervalScheme::SyncBounded,
                        FeatureKind::BB);
}

TEST(SelectionIo, RoundTripPreservesStructure)
{
    SubsetSelection original = makeSelection();
    std::stringstream buffer;
    saveSelection(original, buffer);
    SubsetSelection loaded = loadSelection(buffer);

    EXPECT_EQ(loaded.scheme, original.scheme);
    EXPECT_EQ(loaded.feature, original.feature);
    EXPECT_EQ(loaded.totalInstrs, original.totalInstrs);
    EXPECT_EQ(loaded.selectedInstrs, original.selectedInstrs);
    EXPECT_EQ(loaded.selected, original.selected);
    ASSERT_EQ(loaded.ratios.size(), original.ratios.size());
    for (size_t c = 0; c < original.ratios.size(); ++c)
        EXPECT_DOUBLE_EQ(loaded.ratios[c], original.ratios[c]);
    ASSERT_EQ(loaded.intervals.size(), original.intervals.size());
    for (size_t i = 0; i < original.intervals.size(); ++i) {
        EXPECT_EQ(loaded.intervals[i].firstDispatch,
                  original.intervals[i].firstDispatch);
        EXPECT_EQ(loaded.intervals[i].lastDispatch,
                  original.intervals[i].lastDispatch);
        EXPECT_EQ(loaded.intervals[i].instrs,
                  original.intervals[i].instrs);
    }
}

TEST(SelectionIo, LoadedSelectionProjectsIdentically)
{
    SubsetSelection original = makeSelection();
    std::stringstream buffer;
    saveSelection(original, buffer);
    SubsetSelection loaded = loadSelection(buffer);

    EXPECT_DOUBLE_EQ(projectedSpi(app().db, loaded),
                     projectedSpi(app().db, original));
    EXPECT_DOUBLE_EQ(loaded.selectionFraction(),
                     original.selectionFraction());

    // And on a replayed trial, as a cross-process workflow would.
    gpu::TrialConfig trial;
    trial.noiseSeed = 777;
    TraceDatabase db2 = replayTrial(
        app().recording, gpu::DeviceConfig::hd4000(), trial);
    EXPECT_DOUBLE_EQ(selectionErrorPct(db2, loaded),
                     selectionErrorPct(db2, original));
}

TEST(SelectionIo, FileRoundTrip)
{
    SubsetSelection original = makeSelection();
    std::string path = "/tmp/gt_selection_test.simpoints";
    saveSelectionFile(original, path);
    SubsetSelection loaded = loadSelectionFile(path);
    EXPECT_EQ(loaded.selected, original.selected);
    std::remove(path.c_str());
}

TEST(SelectionIo, RejectsBadMagic)
{
    setLogQuiet(true);
    std::stringstream buffer("simpoints but not really\n");
    EXPECT_THROW(loadSelection(buffer), FatalError);
    setLogQuiet(false);
}

TEST(SelectionIo, RejectsOutOfRangeSimpoint)
{
    setLogQuiet(true);
    std::stringstream buffer(
        "gtpin-selection v1\nscheme 0\nfeature 5\n"
        "totalInstrs 100\nintervals 1\n0 0 100 0.5\n"
        "simpoints 1\n7 0\nweights 1\n1.0 0\nend\n");
    EXPECT_THROW(loadSelection(buffer), FatalError);
    setLogQuiet(false);
}

TEST(SelectionIo, RejectsBadWeights)
{
    setLogQuiet(true);
    std::stringstream buffer(
        "gtpin-selection v1\nscheme 0\nfeature 5\n"
        "totalInstrs 100\nintervals 1\n0 0 100 0.5\n"
        "simpoints 1\n0 0\nweights 1\n0.4 0\nend\n");
    EXPECT_THROW(loadSelection(buffer), FatalError);
    setLogQuiet(false);
}

TEST(SelectionIo, RejectsTruncation)
{
    setLogQuiet(true);
    SubsetSelection original = makeSelection();
    std::stringstream buffer;
    saveSelection(original, buffer);
    std::string text = buffer.str();
    std::stringstream cut(text.substr(0, text.size() / 2));
    EXPECT_THROW(loadSelection(cut), FatalError);
    setLogQuiet(false);
}

} // anonymous namespace
} // namespace gt::core
