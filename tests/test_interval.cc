/**
 * @file
 * Interval-construction tests (Table II): partition properties, the
 * sync-boundary and whole-kernel constraints the paper's Section V-A
 * says are strict hardware-designer requirements, and the relative
 * sizing of the three schemes — checked both on synthetic traces and
 * on real profiled applications, parameterized across schemes.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/pipeline.hh"

namespace gt::core
{
namespace
{

/** Synthetic database: 100 dispatches, sync every 10, 1K instrs. */
TraceDatabase
syntheticDb(uint64_t dispatches = 100, uint64_t per_epoch = 10,
            uint64_t instrs = 1000)
{
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    std::vector<ocl::ApiCallRecord> stream;
    uint64_t idx = 0;
    for (uint64_t i = 0; i < dispatches; ++i) {
        gtpin::DispatchProfile p;
        p.seq = i;
        p.kernelId = (uint32_t)(i % 3);
        p.kernelName = "k" + std::to_string(i % 3);
        p.globalWorkSize = 256;
        p.instrs = instrs * (1 + i % 4);
        p.blockCounts = {p.instrs / 10};
        p.blockLens = {10};
        p.blockReadBytes = {40};
        p.blockWriteBytes = {4};
        profiles.push_back(p);

        cfl::KernelTiming t;
        t.seq = i;
        t.seconds = 1e-5 * (double)(1 + i % 4);
        timings.push_back(t);

        ocl::ApiCallRecord rec;
        rec.callIndex = idx++;
        rec.id = ocl::ApiCallId::EnqueueNDRangeKernel;
        rec.dispatchSeq = i;
        stream.push_back(rec);
        if ((i + 1) % per_epoch == 0) {
            ocl::ApiCallRecord sync;
            sync.callIndex = idx++;
            sync.id = ocl::ApiCallId::Finish;
            stream.push_back(sync);
        }
    }
    return TraceDatabase::build(std::move(profiles), timings,
                                stream);
}

/** Check the paper's strict interval invariants. */
void
checkInvariants(const TraceDatabase &db,
                const std::vector<Interval> &intervals)
{
    ASSERT_FALSE(intervals.empty());
    // Partition: covers every dispatch exactly once, in order.
    EXPECT_EQ(intervals.front().firstDispatch, 0u);
    EXPECT_EQ(intervals.back().lastDispatch,
              db.numDispatches() - 1);
    for (size_t i = 0; i < intervals.size(); ++i) {
        const Interval &iv = intervals[i];
        // At least one whole kernel invocation per interval.
        EXPECT_LE(iv.firstDispatch, iv.lastDispatch);
        EXPECT_GE(iv.numDispatches(), 1u);
        if (i > 0) {
            EXPECT_EQ(iv.firstDispatch,
                      intervals[i - 1].lastDispatch + 1);
        }
        // Never spans a synchronization call.
        EXPECT_EQ(db.syncEpoch(iv.firstDispatch),
                  db.syncEpoch(iv.lastDispatch));
        // Aggregates are consistent.
        uint64_t instrs = 0;
        double seconds = 0.0;
        for (uint64_t d = iv.firstDispatch; d <= iv.lastDispatch;
             ++d) {
            instrs += db.profileAt(d).instrs;
            seconds += db.seconds(d);
        }
        EXPECT_EQ(instrs, iv.instrs);
        EXPECT_DOUBLE_EQ(seconds, iv.seconds);
    }
    // Total instructions conserved.
    uint64_t total = 0;
    for (const Interval &iv : intervals)
        total += iv.instrs;
    EXPECT_EQ(total, db.totalInstrs());
}

class SchemeTest : public ::testing::TestWithParam<IntervalScheme>
{
};

TEST_P(SchemeTest, InvariantsOnSyntheticTrace)
{
    TraceDatabase db = syntheticDb();
    auto intervals = buildIntervals(db, GetParam());
    checkInvariants(db, intervals);
}

TEST_P(SchemeTest, InvariantsOnRealApplication)
{
    static const ProfiledApp app = profileApp(
        *workloads::findWorkload("cb-histogram-buffer"));
    auto intervals = buildIntervals(app.db, GetParam());
    checkInvariants(app.db, intervals);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeTest,
    ::testing::Values(IntervalScheme::SyncBounded,
                      IntervalScheme::ApproxInstructions,
                      IntervalScheme::SingleKernel),
    [](const auto &info) {
        return std::string(intervalSchemeName(info.param)) ==
                "approx-n"
            ? std::string("approx")
            : std::string(intervalSchemeName(info.param));
    });

TEST(Intervals, SchemeSizesAreOrderedLikeTableII)
{
    TraceDatabase db = syntheticDb(200, 20);
    auto sync =
        buildIntervals(db, IntervalScheme::SyncBounded);
    auto approx = buildIntervals(
        db, IntervalScheme::ApproxInstructions, 8000);
    auto kernel =
        buildIntervals(db, IntervalScheme::SingleKernel);

    // Table II: sync intervals are largest (fewest), kernel
    // intervals smallest (most).
    EXPECT_LE(sync.size(), approx.size());
    EXPECT_LE(approx.size(), kernel.size());
    EXPECT_EQ(kernel.size(), db.numDispatches());
    EXPECT_EQ(sync.size(), db.numSyncEpochs());
}

TEST(Intervals, SingleKernelIsOneDispatchEach)
{
    TraceDatabase db = syntheticDb(50, 10);
    auto intervals =
        buildIntervals(db, IntervalScheme::SingleKernel);
    for (const Interval &iv : intervals)
        EXPECT_EQ(iv.numDispatches(), 1u);
}

TEST(Intervals, ApproxRespectsTarget)
{
    TraceDatabase db = syntheticDb(100, 100, 1000);
    // Epochs are huge (one sync at the end); target 5000 instrs.
    auto intervals = buildIntervals(
        db, IntervalScheme::ApproxInstructions, 5000);
    // Chunks reach the target without splitting a dispatch: each is
    // at least the target but less than target + the largest
    // dispatch (4000 instrs).
    for (size_t i = 0; i + 1 < intervals.size(); ++i) {
        EXPECT_GE(intervals[i].instrs, 5000u);
        EXPECT_LT(intervals[i].instrs, 5000u + 4000u);
    }
}

TEST(Intervals, ApproxDefaultsToThousandth)
{
    TraceDatabase db = syntheticDb(100, 10);
    auto def = buildIntervals(
        db, IntervalScheme::ApproxInstructions, 0);
    auto expl = buildIntervals(
        db, IntervalScheme::ApproxInstructions,
        std::max<uint64_t>(1, db.totalInstrs() / 1000));
    EXPECT_EQ(def.size(), expl.size());
}

TEST(Intervals, SyncBoundedMatchesEpochs)
{
    TraceDatabase db = syntheticDb(60, 6);
    auto intervals =
        buildIntervals(db, IntervalScheme::SyncBounded);
    EXPECT_EQ(intervals.size(), db.numSyncEpochs());
    for (const Interval &iv : intervals)
        EXPECT_EQ(iv.numDispatches(), 6u);
}

TEST(Intervals, StatsComputed)
{
    TraceDatabase db = syntheticDb(40, 4);
    auto intervals =
        buildIntervals(db, IntervalScheme::SingleKernel);
    IntervalStats st = intervalStats(intervals);
    EXPECT_EQ(st.count, 40u);
    EXPECT_EQ(st.minInstrs, 1000u);
    EXPECT_EQ(st.maxInstrs, 4000u);
    EXPECT_NEAR(st.avgInstrs, 2500.0, 1.0);
}

TEST(Intervals, SpiOfInterval)
{
    Interval iv;
    iv.instrs = 1000;
    iv.seconds = 0.5;
    EXPECT_DOUBLE_EQ(iv.spi(), 0.0005);
    setLogQuiet(true);
    Interval empty;
    EXPECT_THROW(empty.spi(), PanicError);
    setLogQuiet(false);
}

TEST(Intervals, SchemeNames)
{
    EXPECT_STREQ(intervalSchemeName(IntervalScheme::SyncBounded),
                 "sync");
    EXPECT_STREQ(
        intervalSchemeName(IntervalScheme::ApproxInstructions),
        "approx-n");
    EXPECT_STREQ(intervalSchemeName(IntervalScheme::SingleKernel),
                 "kernel");
}

} // anonymous namespace
} // namespace gt::core
