/**
 * @file
 * Property sweep across the kernel-template library: for every
 * template and a grid of leading-parameter values, the instantiated
 * binary must verify, and the executor's Fast mode must produce
 * bit-identical profiles to Full mode (the soundness property the
 * whole profiling pipeline rests on). Also sweeps dispatch SIMD
 * widths and checks dynamic counts respond monotonically to the
 * work parameter.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/executor.hh"
#include "workloads/templates.hh"

namespace gt::workloads
{
namespace
{

using Param = std::tuple<std::string, int64_t>;

class TemplateSweep : public ::testing::TestWithParam<Param>
{
  protected:
    TemplateSweep()
        : config(gpu::DeviceConfig::hd4000()), memory(16 << 20),
          exec(config, memory)
    {}

    isa::KernelBinary
    make(int64_t leading)
    {
        isa::KernelSource src;
        src.name = "sweep";
        src.templateName = std::get<0>(GetParam());
        src.params = {leading};
        return TemplateJit().compile(src);
    }

    gpu::Dispatch
    dispatchFor(const isa::KernelBinary &bin, uint8_t simd)
    {
        gpu::Dispatch d;
        d.binary = &bin;
        d.globalSize = 64;
        d.simdWidth = simd;
        uint32_t base = (uint32_t)memory.allocate(4 << 20);
        d.args.assign(bin.numArgs, base);
        return d;
    }

    gpu::DeviceConfig config;
    gpu::DeviceMemory memory;
    gpu::Executor exec;
};

TEST_P(TemplateSweep, VerifiesAndFastEqualsFull)
{
    isa::KernelBinary bin = make(std::get<1>(GetParam()));
    EXPECT_NO_THROW(isa::verify(bin));

    for (uint8_t simd : {(uint8_t)8, (uint8_t)16}) {
        gpu::Dispatch d = dispatchFor(bin, simd);
        gpu::ExecProfile fast =
            exec.run(d, gpu::Executor::Mode::Fast);
        gpu::ExecProfile full =
            exec.run(d, gpu::Executor::Mode::Full);

        EXPECT_EQ(fast.dynInstrs, full.dynInstrs)
            << "simd " << (int)simd;
        EXPECT_EQ(fast.blockCounts, full.blockCounts);
        EXPECT_EQ(fast.opcodeCounts, full.opcodeCounts);
        EXPECT_EQ(fast.bytesRead, full.bytesRead);
        EXPECT_EQ(fast.bytesWritten, full.bytesWritten);
        EXPECT_EQ(fast.simdCounts, full.simdCounts);
        EXPECT_DOUBLE_EQ(fast.threadCycles, full.threadCycles);
        memory.resetAllocator();
    }
}

TEST_P(TemplateSweep, WorkParameterIsMonotone)
{
    // More trips/rounds/stages must never shrink the dynamic
    // instruction count.
    isa::KernelBinary small = make(2);
    isa::KernelBinary large = make(std::get<1>(GetParam()) + 4);

    gpu::Dispatch ds = dispatchFor(small, 16);
    gpu::ExecProfile ps = exec.run(ds, gpu::Executor::Mode::Fast);
    memory.resetAllocator();
    gpu::Dispatch dl = dispatchFor(large, 16);
    gpu::ExecProfile pl = exec.run(dl, gpu::Executor::Mode::Fast);

    EXPECT_GE(pl.dynInstrs, ps.dynInstrs);
    EXPECT_GT(ps.dynInstrs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesAndParams, TemplateSweep, ::testing::ValuesIn([] {
        std::vector<Param> params;
        for (const std::string &name :
             builtinTemplates().templateNames()) {
            for (int64_t leading : {1, 4, 9})
                params.emplace_back(name, leading);
        }
        return params;
    }()),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
            std::to_string(std::get<1>(info.param));
    });

} // anonymous namespace
} // namespace gt::workloads
