/**
 * @file
 * GT-Pin framework tests: the binary rewriter must not perturb
 * program semantics, the built-in tools' trace-buffer-derived counts
 * must match the executor's ground truth exactly, and per-dispatch
 * delta accounting must hold across kernels and dispatches.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "gpu/exec_profile.hh"
#include "gtpin/gtpin.hh"
#include "gtpin/kernel_profile.hh"
#include "gtpin/tools.hh"
#include "ocl/runtime.hh"
#include "workloads/templates.hh"

namespace gt::gtpin
{
namespace
{

/** A driver+runtime pair with GT-Pin attached before any build. */
class GtPinTest : public ::testing::Test
{
  protected:
    GtPinTest()
        : jit(),
          driver(gpu::DeviceConfig::hd4000(), jit, noiseless()),
          rt(driver)
    {}

    static gpu::TrialConfig
    noiseless()
    {
        gpu::TrialConfig t;
        t.noiseSigma = 0.0;
        return t;
    }

    /** Run one dispatch of template @p tname with default params. */
    ocl::DispatchResult
    runOne(const std::string &tname, uint64_t gws = 256)
    {
        ocl::Context ctx = rt.createContext();
        ocl::CommandQueue q = rt.createCommandQueue(ctx);
        isa::KernelSource src;
        src.name = tname + "_k";
        src.templateName = tname;
        ocl::Program prog = rt.createProgramWithSource(ctx, {src});
        rt.buildProgram(prog);
        ocl::Kernel k = rt.createKernel(prog, src.name);
        ocl::Mem buf = rt.createBuffer(ctx, 1 << 20);
        const isa::KernelBinary &bin = driver.binary(0);
        for (uint32_t a = 0; a < bin.numArgs; ++a)
            rt.setKernelArg(k, a, buf);

        last = {};
        class Grab : public ocl::ApiObserver
        {
          public:
            explicit Grab(ocl::DispatchResult &out) : out(out) {}
            void
            onDispatchExecuted(const ocl::DispatchResult &r) override
            {
                out = r;
            }
            ocl::DispatchResult &out;
        } grab(last);
        rt.addObserver(&grab);
        rt.enqueueNDRangeKernel(q, k, gws);
        rt.finish(q);
        rt.removeObserver(&grab);
        return last;
    }

    workloads::TemplateJit jit;
    ocl::GpuDriver driver;
    ocl::ClRuntime rt;
    ocl::DispatchResult last;
};

// --- rewriter ----------------------------------------------------------

TEST(Rewriter, InsertsRequestedInstrumentation)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "r";
    src.templateName = "julia";
    isa::KernelBinary bin = jit.compile(src);

    SlotAllocator slots;
    Instrumenter instr(bin, slots);
    for (const auto &block : bin.blocks)
        instr.countBlockEntry(block.id, instr.allocSlot());
    instr.timeKernel(instr.allocSlot());
    isa::KernelBinary out = instr.apply();

    EXPECT_GT(out.staticInstrCount(), bin.staticInstrCount());
    EXPECT_EQ(out.staticAppInstrCount(), bin.staticAppInstrCount());
    EXPECT_EQ(out.blocks.size(), bin.blocks.size());
    // Every block begins with its counter.
    for (const auto &block : out.blocks) {
        EXPECT_EQ(block.instrs[0].cls(),
                  isa::OpClass::Instrumentation);
    }
}

TEST(Rewriter, TerminatorStaysLast)
{
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "t";
    src.templateName = "stream";
    isa::KernelBinary bin = jit.compile(src);

    SlotAllocator slots;
    Instrumenter instr(bin, slots);
    // Ask for send-byte recording after every send, including sends
    // adjacent to terminators.
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            if (block.instrs[i].op == isa::Opcode::Send)
                instr.recordSendBytes(block.id, i,
                                      instr.allocSlot());
        }
    }
    isa::KernelBinary out = instr.apply();
    EXPECT_NO_THROW(isa::verify(out));
    for (const auto &block : out.blocks) {
        for (uint32_t i = 0; i + 1 < block.instrs.size(); ++i)
            EXPECT_FALSE(isa::isTerminator(block.instrs[i].op));
    }
}

TEST(Rewriter, RejectsInvalidRequests)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "bad";
    src.templateName = "julia";
    isa::KernelBinary bin = jit.compile(src);
    SlotAllocator slots;
    Instrumenter instr(bin, slots);
    EXPECT_THROW(instr.countBlockEntry(999, 0), PanicError);
    EXPECT_THROW(instr.recordSendBytes(0, 0, 0), PanicError);
    setLogQuiet(false);
}

// --- semantics preservation ---------------------------------------------

TEST_F(GtPinTest, InstrumentationDoesNotPerturbExecution)
{
    // Run the same kernel with and without GT-Pin; device memory
    // results must be identical (the paper's no-perturbation
    // guarantee).
    auto run_once = [](bool with_pin, std::vector<uint8_t> &out) {
        workloads::TemplateJit jit;
        gpu::TrialConfig t;
        t.noiseSigma = 0.0;
        ocl::GpuDriver drv(gpu::DeviceConfig::hd4000(), jit, t);
        drv.setExecMode(gpu::Executor::Mode::Full);
        BasicBlockCounterTool bb;
        MemBytesTool mem;
        GtPin pin;
        pin.addTool(&bb);
        pin.addTool(&mem);
        if (with_pin)
            pin.attach(drv);
        ocl::ClRuntime rt(drv);
        ocl::Context ctx = rt.createContext();
        ocl::CommandQueue q = rt.createCommandQueue(ctx);
        isa::KernelSource src;
        src.name = "ht";
        src.templateName = "hash";
        src.params = {16, 8};
        ocl::Program prog = rt.createProgramWithSource(ctx, {src});
        rt.buildProgram(prog);
        ocl::Kernel k = rt.createKernel(prog, "ht");
        ocl::Mem in = rt.createBuffer(ctx, 1 << 16);
        ocl::Mem res = rt.createBuffer(ctx, 1 << 16);
        rt.enqueueFillBuffer(q, in, 0x01020304u, 0, 1 << 16);
        rt.setKernelArg(k, 0, in);
        rt.setKernelArg(k, 1, res);
        rt.setKernelArg(k, 2, 42u);
        rt.enqueueNDRangeKernel(q, k, 128, 8);
        out = rt.enqueueReadBuffer(q, res, 0, 4096);
        if (with_pin)
            pin.detach();
    };

    std::vector<uint8_t> plain, pinned;
    run_once(false, plain);
    run_once(true, pinned);
    EXPECT_EQ(plain, pinned);
}

// --- tool correctness vs. executor ground truth --------------------------

TEST_F(GtPinTest, BasicBlockCountsMatchGroundTruth)
{
    BasicBlockCounterTool bb;
    GtPin pin;
    pin.addTool(&bb);
    pin.attach(driver);

    ocl::DispatchResult r = runOne("blur");
    ASSERT_EQ(bb.lastBlockCounts().size(),
              r.profile.blockCounts.size());
    for (size_t i = 0; i < r.profile.blockCounts.size(); ++i)
        EXPECT_EQ(bb.lastBlockCounts()[i],
                  r.profile.blockCounts[i]);
    EXPECT_EQ(bb.lastDynInstrs(), r.profile.dynInstrs);
    EXPECT_EQ(bb.totalDynInstrs(), r.profile.dynInstrs);
    pin.detach();
}

TEST_F(GtPinTest, OpcodeMixMatchesGroundTruth)
{
    OpcodeMixTool mix;
    GtPin pin;
    pin.addTool(&mix);
    pin.attach(driver);

    ocl::DispatchResult r = runOne("aes");
    for (int c = 0; c < isa::numOpClasses; ++c) {
        if ((isa::OpClass)c == isa::OpClass::Instrumentation)
            continue;
        EXPECT_EQ(mix.classCounts()[c], r.profile.classCounts[c])
            << isa::opClassName((isa::OpClass)c);
    }
    for (int b = 0; b < 5; ++b)
        EXPECT_EQ(mix.simdCounts()[b], r.profile.simdCounts[b]);
    EXPECT_EQ(mix.totalInstrs(), r.profile.dynInstrs);
    pin.detach();
}

TEST_F(GtPinTest, MemBytesMatchGroundTruth)
{
    MemBytesTool mem;
    GtPin pin;
    pin.addTool(&mem);
    pin.attach(driver);

    ocl::DispatchResult r = runOne("effect");
    EXPECT_EQ(mem.totalBytesRead(), r.profile.bytesRead);
    EXPECT_EQ(mem.totalBytesWritten(), r.profile.bytesWritten);
    EXPECT_EQ(mem.kernelBytesRead(0), r.profile.bytesRead);
    pin.detach();
}

TEST_F(GtPinTest, SimdUtilizationMatchesGroundTruth)
{
    SimdUtilizationTool util;
    GtPin pin;
    pin.addTool(&util);
    pin.attach(driver);

    ocl::DispatchResult r = runOne("shader");
    // Ground truth from the executor profile: sum of width x count
    // over the active-channel budget.
    double active = 0.0;
    for (int bin = 0; bin < 5; ++bin) {
        active += (double)r.profile.simdCounts[bin] *
            gpu::simdBinWidth(bin);
    }
    double expected = active /
        ((double)r.profile.dynInstrs * isa::maxSimdWidth);
    EXPECT_NEAR(util.kernelUtilization(0), expected, 1e-12);
    EXPECT_NEAR(util.overallUtilization(), expected, 1e-12);
    // A mostly 16-wide shader keeps the channels busy.
    EXPECT_GT(util.overallUtilization(), 0.5);
    pin.detach();
}

TEST_F(GtPinTest, TimerReportsKernelCycles)
{
    KernelTimerTool timer;
    GtPin pin;
    pin.addTool(&timer);
    pin.attach(driver);

    ocl::DispatchResult r = runOne("julia");
    EXPECT_GT(timer.totalCycles(), 0u);
    // Timer reads cycles across all threads; it must be within the
    // profile's total thread cycles (instrumented).
    EXPECT_LE((double)timer.totalCycles(),
              r.profile.threadCycles * 1.01);
    EXPECT_GT((double)timer.totalCycles(),
              r.profile.threadCycles * 0.5);
    pin.detach();
}

TEST_F(GtPinTest, KernelProfileToolRecordsPerDispatch)
{
    KernelProfileTool tool;
    GtPin pin;
    pin.addTool(&tool);
    pin.attach(driver);

    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    isa::KernelSource src;
    src.name = "kp";
    src.templateName = "stream";
    src.params = {8, 0xff, 16};
    ocl::Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    ocl::Kernel k = rt.createKernel(prog, "kp");
    ocl::Mem buf = rt.createBuffer(ctx, 1 << 16);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 1u);
    rt.setKernelArg(k, 3, 0u);
    rt.enqueueNDRangeKernel(q, k, 256);
    rt.enqueueNDRangeKernel(q, k, 512);
    rt.finish(q);

    ASSERT_EQ(tool.profiles().size(), 2u);
    const DispatchProfile &p0 = tool.profiles()[0];
    const DispatchProfile &p1 = tool.profiles()[1];
    EXPECT_EQ(p0.seq, 0u);
    EXPECT_EQ(p1.seq, 1u);
    EXPECT_EQ(p0.kernelName, "kp");
    EXPECT_EQ(p0.globalWorkSize, 256u);
    EXPECT_EQ(p1.globalWorkSize, 512u);
    // Same kernel, twice the threads: twice the instructions.
    EXPECT_EQ(p1.instrs, p0.instrs * 2);
    EXPECT_EQ(p1.bytesRead, p0.bytesRead * 2);
    EXPECT_EQ(tool.totalInstrs(), p0.instrs + p1.instrs);
    pin.detach();
}

TEST_F(GtPinTest, MultipleToolsCoexist)
{
    BasicBlockCounterTool bb;
    OpcodeMixTool mix;
    MemBytesTool mem;
    KernelProfileTool prof;
    GtPin pin;
    pin.addTool(&bb);
    pin.addTool(&mix);
    pin.addTool(&mem);
    pin.addTool(&prof);
    pin.attach(driver);

    ocl::DispatchResult r = runOne("nbody");
    EXPECT_EQ(bb.lastDynInstrs(), r.profile.dynInstrs);
    EXPECT_EQ(mix.totalInstrs(), r.profile.dynInstrs);
    EXPECT_EQ(mem.totalBytesRead(), r.profile.bytesRead);
    ASSERT_EQ(prof.profiles().size(), 1u);
    EXPECT_EQ(prof.profiles()[0].instrs, r.profile.dynInstrs);
    EXPECT_GT(pin.slotsAllocated(), 0u);
    EXPECT_GT(pin.instructionsInserted(), 0u);
    pin.detach();
}

TEST_F(GtPinTest, StaticStructureReported)
{
    BasicBlockCounterTool bb;
    GtPin pin;
    pin.addTool(&bb);
    pin.attach(driver);
    runOne("deep");
    const isa::KernelBinary &bin = driver.binary(0);
    EXPECT_EQ(bb.staticBlocks(0), bin.blocks.size());
    EXPECT_EQ(bb.totalStaticBlocks(), bin.blocks.size());
    EXPECT_EQ(bb.totalStaticInstrs(), bin.staticAppInstrCount());
    pin.detach();
}

TEST_F(GtPinTest, AttachGuards)
{
    setLogQuiet(true);
    GtPin pin;
    pin.attach(driver);
    GtPin second;
    EXPECT_THROW(second.attach(driver), PanicError);
    pin.detach();
    EXPECT_NO_THROW(second.attach(driver));
    second.detach();

    BasicBlockCounterTool bb;
    GtPin third;
    third.attach(driver);
    EXPECT_THROW(third.addTool(&bb), PanicError);
    third.detach();
    setLogQuiet(false);
}

TEST_F(GtPinTest, ReattachBaselinesTheSnapshot)
{
    // Detach and re-attach across runs: the second attachment must
    // not report the first run's accumulated trace values as a
    // delta of its first dispatch.
    BasicBlockCounterTool bb;
    GtPin pin;
    pin.addTool(&bb);
    pin.attach(driver);
    ocl::DispatchResult first = runOne("julia");
    uint64_t after_first = bb.totalDynInstrs();
    pin.detach();

    pin.attach(driver);
    // Same kernel object dispatched again through the same driver.
    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    isa::KernelSource src;
    src.name = "julia2";
    src.templateName = "julia";
    ocl::Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    ocl::Kernel k = rt.createKernel(prog, "julia2");
    ocl::Mem buf = rt.createBuffer(ctx, 1 << 20);
    rt.setKernelArg(k, 0, buf);
    rt.setKernelArg(k, 1, buf);
    rt.setKernelArg(k, 2, 7u);
    rt.enqueueNDRangeKernel(q, k, 256);
    rt.finish(q);

    EXPECT_EQ(bb.lastDynInstrs(), first.profile.dynInstrs == 0
                  ? bb.lastDynInstrs()
                  : bb.totalDynInstrs() - after_first);
    pin.detach();
}

TEST_F(GtPinTest, OverheadIsSmallMultiple)
{
    // Paper Section III-C: instrumented runs are a small multiple of
    // native time, nothing like simulation slowdowns.
    auto device_time = [](bool with_pin) {
        workloads::TemplateJit jit;
        gpu::TrialConfig t;
        t.noiseSigma = 0.0;
        ocl::GpuDriver drv(gpu::DeviceConfig::hd4000(), jit, t);
        BasicBlockCounterTool bb;
        OpcodeMixTool mix;
        MemBytesTool mem;
        KernelTimerTool timer;
        GtPin pin;
        pin.addTool(&bb);
        pin.addTool(&mix);
        pin.addTool(&mem);
        pin.addTool(&timer);
        if (with_pin)
            pin.attach(drv);
        ocl::ClRuntime rt(drv);
        ocl::Context ctx = rt.createContext();
        ocl::CommandQueue q = rt.createCommandQueue(ctx);
        isa::KernelSource src;
        src.name = "oh";
        src.templateName = "blend";
        ocl::Program prog = rt.createProgramWithSource(ctx, {src});
        rt.buildProgram(prog);
        ocl::Kernel k = rt.createKernel(prog, "oh");
        ocl::Mem buf = rt.createBuffer(ctx, 1 << 20);
        rt.setKernelArg(k, 0, buf);
        rt.setKernelArg(k, 1, buf);
        rt.setKernelArg(k, 2, buf);
        rt.setKernelArg(k, 3, 0x3f000000u);
        for (int i = 0; i < 10; ++i)
            rt.enqueueNDRangeKernel(q, k, 65536);
        rt.finish(q);
        double t_dev = drv.deviceBusySeconds();
        if (with_pin)
            pin.detach();
        return t_dev;
    };

    double native = device_time(false);
    double pinned = device_time(true);
    double overhead = pinned / native;
    EXPECT_GT(overhead, 1.0);
    EXPECT_LT(overhead, 12.0); // the paper reports 2-10x
}

} // anonymous namespace
} // namespace gt::gtpin
