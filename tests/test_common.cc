/**
 * @file
 * Unit tests for the common utilities: logging, deterministic RNG,
 * statistics accumulators, and table emission.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace gt
{
namespace
{

// --- logging --------------------------------------------------------

TEST(Logging, PanicThrowsPanicError)
{
    setLogQuiet(true);
    EXPECT_THROW(panic("broken: ", 42), PanicError);
    setLogQuiet(false);
}

TEST(Logging, FatalThrowsFatalError)
{
    setLogQuiet(true);
    EXPECT_THROW(fatal("bad input"), FatalError);
    setLogQuiet(false);
}

TEST(Logging, FatalIsNotPanic)
{
    setLogQuiet(true);
    try {
        fatal("user error");
        FAIL() << "fatal returned";
    } catch (const FatalError &) {
        // expected
    } catch (...) {
        FAIL() << "wrong exception type";
    }
    setLogQuiet(false);
}

TEST(Logging, AssertMacroPassesAndFails)
{
    setLogQuiet(true);
    EXPECT_NO_THROW(GT_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(GT_ASSERT(1 + 1 == 3, "broken"), PanicError);
    setLogQuiet(false);
}

TEST(Logging, MessagesCarryArguments)
{
    setLogQuiet(true);
    try {
        fatal("value was ", 17, " not ", 3.5);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("17"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("3.5"),
                  std::string::npos);
    }
    setLogQuiet(false);
}

// --- rng ------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedZeroPanics)
{
    setLogQuiet(true);
    Rng rng(7);
    EXPECT_THROW(rng.nextBounded(0), PanicError);
    setLogQuiet(false);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        int64_t v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMomentsRoughlyCorrect)
{
    Rng rng(13);
    RunningStat st;
    for (int i = 0; i < 20000; ++i)
        st.add(rng.nextGaussian(5.0, 2.0));
    EXPECT_NEAR(st.mean(), 5.0, 0.1);
    EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, BoolProbability)
{
    Rng rng(17);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += rng.nextBool(0.25);
    EXPECT_NEAR((double)heads / 10000.0, 0.25, 0.03);
}

TEST(Rng, ZipfSkewsTowardZero)
{
    Rng rng(19);
    uint64_t low = 0, total = 4000;
    for (uint64_t i = 0; i < total; ++i) {
        uint64_t v = rng.nextZipf(100, 1.2);
        EXPECT_LT(v, 100u);
        low += v < 10;
    }
    // Zipf(1.2) concentrates well over half the mass in the head.
    EXPECT_GT(low, total / 2);
}

TEST(Rng, ZipfSingleton)
{
    Rng rng(21);
    EXPECT_EQ(rng.nextZipf(1, 1.0), 0u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(23);
    Rng forked = a.fork();
    // The fork differs from the parent's continued stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == forked.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(31);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.nextLogNormal(0.0, 0.5), 0.0);
}

// --- stats ----------------------------------------------------------

TEST(RunningStatTest, MatchesDirectComputation)
{
    RunningStat st;
    std::vector<double> v{1.0, 2.0, 4.0, 8.0, 16.0};
    for (double x : v)
        st.add(x);
    EXPECT_EQ(st.count(), 5u);
    EXPECT_DOUBLE_EQ(st.mean(), 6.2);
    EXPECT_DOUBLE_EQ(st.min(), 1.0);
    EXPECT_DOUBLE_EQ(st.max(), 16.0);
    double var = 0.0;
    for (double x : v)
        var += (x - 6.2) * (x - 6.2);
    var /= 5.0;
    EXPECT_NEAR(st.variance(), var, 1e-9);
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat st;
    EXPECT_EQ(st.count(), 0u);
    EXPECT_EQ(st.mean(), 0.0);
    EXPECT_EQ(st.stddev(), 0.0);
}

TEST(RunningStatTest, WeightedMeanMatches)
{
    RunningStat st;
    st.add(10.0, 1.0);
    st.add(20.0, 3.0);
    EXPECT_DOUBLE_EQ(st.mean(), 17.5);
}

TEST(RunningStatTest, MergeEqualsCombined)
{
    Rng rng(37);
    RunningStat all, a, b;
    for (int i = 0; i < 500; ++i) {
        double x = rng.nextGaussian();
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, NegativeWeightPanics)
{
    setLogQuiet(true);
    RunningStat st;
    EXPECT_THROW(st.add(1.0, -1.0), PanicError);
    setLogQuiet(false);
}

TEST(HistogramTest, CountsAndFractions)
{
    Histogram h;
    h.add(1, 3);
    h.add(2, 1);
    h.add(1);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(1), 4u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(99), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.8);
}

TEST(HistogramTest, MergeAddsBins)
{
    Histogram a, b;
    a.add(1, 2);
    b.add(1, 3);
    b.add(5, 7);
    a.merge(b);
    EXPECT_EQ(a.count(1), 5u);
    EXPECT_EQ(a.count(5), 7u);
    EXPECT_EQ(a.total(), 12u);
}

TEST(StatsHelpers, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(StatsHelpers, WeightedMean)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    setLogQuiet(true);
    EXPECT_THROW(weightedMean({1.0}, {0.0}), PanicError);
    EXPECT_THROW(weightedMean({1.0}, {1.0, 2.0}), PanicError);
    setLogQuiet(false);
}

TEST(StatsHelpers, Percentile)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(StatsHelpers, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeErrorPct(110.0, 100.0), 10.0);
    EXPECT_DOUBLE_EQ(relativeErrorPct(90.0, 100.0), 10.0);
    setLogQuiet(true);
    EXPECT_THROW(relativeErrorPct(1.0, 0.0), PanicError);
    setLogQuiet(false);
}

// --- table ----------------------------------------------------------

TEST(Table, AlignsColumns)
{
    TextTable t({"a", "bee"});
    t.addRow({"x", "y"});
    t.addRow({"longer", "z"});
    std::ostringstream os;
    t.print(os, "demo");
    std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("| longer | z   |"), std::string::npos);
}

TEST(Table, RowArityChecked)
{
    setLogQuiet(true);
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
    setLogQuiet(false);
}

TEST(Table, CsvEscapesSpecials)
{
    TextTable t({"name", "value"});
    t.addRow({"with,comma", "with\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
    EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(humanCount(999), "999");
    EXPECT_EQ(humanCount(1500), "1.50 K");
    EXPECT_EQ(humanCount(3.7e9), "3.70 G");
    EXPECT_EQ(humanBytes(1024), "1.00 KB");
    EXPECT_EQ(humanBytes(512), "512.00 B");
    EXPECT_EQ(pct(0.123), "12.3%");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

} // anonymous namespace
} // namespace gt
