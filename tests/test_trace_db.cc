/**
 * @file
 * TraceDatabase tests: joining GT-Pin profiles with CoFluent
 * timings and synchronization-epoch assignment.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/trace_db.hh"

namespace gt::core
{
namespace
{

gtpin::DispatchProfile
makeProfile(uint64_t seq, uint64_t instrs, uint32_t kernel_id = 0)
{
    gtpin::DispatchProfile p;
    p.seq = seq;
    p.kernelId = kernel_id;
    p.kernelName = "k" + std::to_string(kernel_id);
    p.globalWorkSize = 256;
    p.instrs = instrs;
    p.blockCounts = {instrs / 10, instrs / 20};
    p.blockLens = {8, 12};
    p.blockReadBytes = {64, 0};
    p.blockWriteBytes = {0, 64};
    return p;
}

cfl::KernelTiming
makeTiming(uint64_t seq, double seconds)
{
    cfl::KernelTiming t;
    t.seq = seq;
    t.kernelName = "k";
    t.seconds = seconds;
    return t;
}

/** Build a synthetic call stream: E=enqueue, S=sync, O=other. */
std::vector<ocl::ApiCallRecord>
makeStream(const std::string &pattern)
{
    std::vector<ocl::ApiCallRecord> calls;
    uint64_t seq = 0;
    uint64_t idx = 0;
    for (char c : pattern) {
        ocl::ApiCallRecord rec;
        rec.callIndex = idx++;
        switch (c) {
          case 'E':
            rec.id = ocl::ApiCallId::EnqueueNDRangeKernel;
            rec.dispatchSeq = seq++;
            break;
          case 'S':
            rec.id = ocl::ApiCallId::Finish;
            break;
          default:
            rec.id = ocl::ApiCallId::SetKernelArg;
            break;
        }
        calls.push_back(rec);
    }
    return calls;
}

TEST(TraceDb, JoinsProfilesAndTimings)
{
    std::vector<gtpin::DispatchProfile> profiles{
        makeProfile(0, 1000), makeProfile(1, 2000)};
    std::vector<cfl::KernelTiming> timings{makeTiming(0, 0.1),
                                           makeTiming(1, 0.3)};
    TraceDatabase db = TraceDatabase::build(
        std::move(profiles), timings, makeStream("OESES"));

    EXPECT_EQ(db.numDispatches(), 2u);
    EXPECT_EQ(db.totalInstrs(), 3000u);
    EXPECT_DOUBLE_EQ(db.totalSeconds(), 0.4);
    EXPECT_DOUBLE_EQ(db.measuredSpi(), 0.4 / 3000.0);
}

TEST(TraceDb, SyncEpochsFollowTheCallStream)
{
    // Three epochs: (E E) S (E) S (E E E)
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    for (uint64_t i = 0; i < 6; ++i) {
        profiles.push_back(makeProfile(i, 100));
        timings.push_back(makeTiming(i, 0.01));
    }
    TraceDatabase db = TraceDatabase::build(
        std::move(profiles), timings, makeStream("EESESEEE"));

    EXPECT_EQ(db.numSyncEpochs(), 3u);
    EXPECT_EQ(db.syncEpoch(0), 0u);
    EXPECT_EQ(db.syncEpoch(1), 0u);
    EXPECT_EQ(db.syncEpoch(2), 1u);
    EXPECT_EQ(db.syncEpoch(3), 2u);
    EXPECT_EQ(db.syncEpoch(5), 2u);
}

TEST(TraceDb, ConsecutiveSyncsDoNotCreateEmptyEpochs)
{
    std::vector<gtpin::DispatchProfile> profiles{
        makeProfile(0, 100), makeProfile(1, 100)};
    std::vector<cfl::KernelTiming> timings{makeTiming(0, 0.01),
                                           makeTiming(1, 0.01)};
    TraceDatabase db = TraceDatabase::build(
        std::move(profiles), timings, makeStream("ESSSSE"));
    EXPECT_EQ(db.numSyncEpochs(), 2u);
}

TEST(TraceDb, CountMismatchPanics)
{
    setLogQuiet(true);
    std::vector<gtpin::DispatchProfile> profiles{
        makeProfile(0, 100)};
    std::vector<cfl::KernelTiming> timings;
    EXPECT_THROW(TraceDatabase::build(std::move(profiles), timings,
                                      makeStream("E")),
                 PanicError);
    setLogQuiet(false);
}

TEST(TraceDb, SequenceMismatchPanics)
{
    setLogQuiet(true);
    std::vector<gtpin::DispatchProfile> profiles{
        makeProfile(0, 100), makeProfile(1, 100)};
    std::vector<cfl::KernelTiming> timings{makeTiming(0, 0.01),
                                           makeTiming(99, 0.01)};
    EXPECT_THROW(TraceDatabase::build(std::move(profiles), timings,
                                      makeStream("EES")),
                 PanicError);
    setLogQuiet(false);
}

TEST(TraceDb, DispatchMissingFromStreamPanics)
{
    setLogQuiet(true);
    std::vector<gtpin::DispatchProfile> profiles{
        makeProfile(0, 100), makeProfile(1, 100)};
    std::vector<cfl::KernelTiming> timings{makeTiming(0, 0.01),
                                           makeTiming(1, 0.01)};
    // Stream only mentions one enqueue.
    EXPECT_THROW(TraceDatabase::build(std::move(profiles), timings,
                                      makeStream("ES")),
                 PanicError);
    setLogQuiet(false);
}

TEST(TraceDb, MeasuredSpiOfEmptyDatabasePanics)
{
    setLogQuiet(true);
    TraceDatabase db;
    EXPECT_THROW(db.measuredSpi(), PanicError);
    setLogQuiet(false);
}

} // anonymous namespace
} // namespace gt::core
