/**
 * @file
 * Recording serialization tests: round-trip fidelity (the replayed
 * stream from a loaded recording must be call-for-call identical),
 * and rejection of malformed inputs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cfl/serialize.hh"
#include "cfl/tracer.hh"
#include "common/logging.hh"
#include "workloads/workload.hh"

namespace gt::cfl
{
namespace
{

Recording
recordApp(const std::string &name)
{
    const workloads::Workload *w = workloads::findWorkload(name);
    GT_ASSERT(w, "unknown workload");
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
    ocl::ClRuntime rt(driver);
    Recorder recorder;
    rt.addObserver(&recorder);
    w->run(rt);
    return recorder.take();
}

TEST(Serialize, RoundTripPreservesEveryCall)
{
    Recording original = recordApp("cb-gaussian-image");
    std::stringstream buffer;
    saveRecording(original, buffer);
    Recording loaded = loadRecording(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.calls.size(); ++i) {
        const auto &a = original.calls[i];
        const auto &b = loaded.calls[i];
        EXPECT_EQ(a.id, b.id) << "call " << i;
        EXPECT_EQ(a.callIndex, b.callIndex);
        EXPECT_EQ(a.dispatchSeq, b.dispatchSeq);
        EXPECT_EQ(a.kernelName, b.kernelName);
        EXPECT_EQ(a.globalWorkSize, b.globalWorkSize);
        EXPECT_EQ(a.argsHash, b.argsHash);
        EXPECT_EQ(a.uargs, b.uargs);
        EXPECT_EQ(a.payload, b.payload);
        ASSERT_EQ(a.sources.size(), b.sources.size());
        for (size_t k = 0; k < a.sources.size(); ++k)
            EXPECT_TRUE(a.sources[k] == b.sources[k]);
    }
}

TEST(Serialize, LoadedRecordingReplaysIdentically)
{
    Recording original = recordApp("cb-gaussian-image");
    std::stringstream buffer;
    saveRecording(original, buffer);
    Recording loaded = loadRecording(buffer);

    auto run_replay = [](const Recording &rec) {
        workloads::TemplateJit jit;
        gpu::TrialConfig trial;
        trial.noiseSigma = 0.0;
        ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit,
                              trial);
        ocl::ClRuntime rt(driver);
        ApiTracer tracer;
        rt.addObserver(&tracer);
        replay(rec, rt);
        return tracer.totalKernelSeconds();
    };

    EXPECT_DOUBLE_EQ(run_replay(original), run_replay(loaded));
}

TEST(Serialize, PayloadBytesSurvive)
{
    Recording rec;
    ocl::ApiCallRecord call;
    call.id = ocl::ApiCallId::EnqueueWriteBuffer;
    call.uargs = {0, 0, 0};
    call.payload = {0x00, 0xff, 0x7f, 0x80, 0x0a, 0x20};
    rec.calls.push_back(call);

    std::stringstream buffer;
    saveRecording(rec, buffer);
    Recording loaded = loadRecording(buffer);
    ASSERT_EQ(loaded.calls.size(), 1u);
    EXPECT_EQ(loaded.calls[0].payload, call.payload);
}

TEST(Serialize, KernelNamesWithSpacesSurvive)
{
    Recording rec;
    ocl::ApiCallRecord call;
    call.id = ocl::ApiCallId::CreateKernel;
    call.kernelName = "a name with  spaces";
    call.uargs = {0};
    rec.calls.push_back(call);

    std::stringstream buffer;
    saveRecording(rec, buffer);
    Recording loaded = loadRecording(buffer);
    EXPECT_EQ(loaded.calls[0].kernelName, call.kernelName);
}

TEST(Serialize, FileRoundTrip)
{
    Recording original = recordApp("cb-gaussian-image");
    std::string path = "/tmp/gt_recording_test.rec";
    saveRecordingFile(original, path);
    Recording loaded = loadRecordingFile(path);
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.dispatchCount(), original.dispatchCount());
    std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagic)
{
    setLogQuiet(true);
    std::stringstream buffer("not a recording\n");
    EXPECT_THROW(loadRecording(buffer), FatalError);
    setLogQuiet(false);
}

TEST(Serialize, RejectsTruncation)
{
    setLogQuiet(true);
    Recording original = recordApp("cb-gaussian-image");
    std::stringstream buffer;
    saveRecording(original, buffer);
    std::string text = buffer.str();
    // Drop the trailing "end\n" and some bytes.
    std::stringstream cut(text.substr(0, text.size() - 20));
    EXPECT_THROW(loadRecording(cut), FatalError);
    setLogQuiet(false);
}

TEST(Serialize, RejectsBadCallId)
{
    setLogQuiet(true);
    std::stringstream buffer(
        "gtpin-recording v1\ncall 999 0 0 0 0 0  u 0 p 0  s 0\n"
        "end\n");
    EXPECT_THROW(loadRecording(buffer), FatalError);
    setLogQuiet(false);
}

TEST(Serialize, RejectsUnsupportedVersion)
{
    setLogQuiet(true);
    std::stringstream buffer("gtpin-recording v99\nend\n");
    // A versioned header that is not ours must name the version
    // problem, not just "bad magic".
    try {
        loadRecording(buffer);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos);
    }
    setLogQuiet(false);
}

TEST(Serialize, RejectsNegativeAndHugeCounts)
{
    setLogQuiet(true);
    // A negative count would wrap through the unsigned extraction
    // into a ~2^64 resize; it must die in validation instead.
    const char *negative_uargs =
        "gtpin-recording v1\ncall 0 0 0 0 0 0  u -1 p 0  s 0\n"
        "end\n";
    std::stringstream a(negative_uargs);
    EXPECT_THROW(loadRecording(a), FatalError);

    const char *huge_payload =
        "gtpin-recording v1\n"
        "call 0 0 0 0 0 0  u 0 p 99999999999 s 0\nend\n";
    std::stringstream b(huge_payload);
    EXPECT_THROW(loadRecording(b), FatalError);

    const char *negative_string =
        "gtpin-recording v1\ncall 0 0 0 0 0 -7 x u 0 p 0  s 0\n"
        "end\n";
    std::stringstream c(negative_string);
    EXPECT_THROW(loadRecording(c), FatalError);
    setLogQuiet(false);
}

TEST(Serialize, MissingFileFatal)
{
    setLogQuiet(true);
    EXPECT_THROW(loadRecordingFile("/nonexistent/path.rec"),
                 FatalError);
    setLogQuiet(false);
}

TEST(Serialize, EmptyRecordingRoundTrips)
{
    Recording empty;
    std::stringstream buffer;
    saveRecording(empty, buffer);
    Recording loaded = loadRecording(buffer);
    EXPECT_TRUE(loaded.empty());
}

} // anonymous namespace
} // namespace gt::cfl
