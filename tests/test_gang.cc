/**
 * @file
 * Differential tests for gang-lockstep execution (GT_EXEC=gang).
 *
 * The gang path reorders thread interleaving, never thread-visible
 * results: everything observable must be bitwise identical to scalar
 * execution. The matrix covers every kernel template under
 * {scalar,gang} x {Full,Fast} x {plain, instrumented, batch-memtrace}
 * with *distinct* per-argument buffers (a shared buffer makes the
 * dispatch-time region checks overlap, pinning scalar execution —
 * itself covered as a fallback case). Adversarial coverage: control
 * divergence at the first and the last superblock, aliasing stores
 * that force gangSafe=false, thread counts that are not a multiple of
 * the gang size, single-thread dispatches, and executor-reuse
 * invariance (the gang scratch buffers persist across dispatches).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "gpu/executor.hh"
#include "gtpin/rewriter.hh"
#include "isa/builder.hh"
#include "workloads/templates.hh"

namespace gt::gpu
{
namespace
{

using gtpin::Instrumenter;
using gtpin::SlotAllocator;
using isa::Flag;
using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Reg;
using isa::imm;

constexpr uint64_t memBytes = 32 << 20;
// Large enough to contain any template's proven access region
// (<= 256 KB + store span), so consecutive allocations are disjoint.
constexpr uint64_t argBufBytes = 1 << 19;

void
expectProfilesEqual(const ExecProfile &a, const ExecProfile &b)
{
    EXPECT_EQ(a.numThreads, b.numThreads);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
    EXPECT_EQ(a.instrumentationInstrs, b.instrumentationInstrs);
    EXPECT_EQ(a.blockCounts, b.blockCounts);
    EXPECT_EQ(a.opcodeCounts, b.opcodeCounts);
    EXPECT_EQ(a.classCounts, b.classCounts);
    EXPECT_EQ(a.simdCounts, b.simdCounts);
    EXPECT_EQ(a.bytesRead, b.bytesRead);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
    EXPECT_EQ(a.sendCount, b.sendCount);
    // Bitwise: gang slots must accrue cycles in scalar thread order.
    EXPECT_EQ(a.threadCycles, b.threadCycles);
}

/** One memory-trace record plus the chunk flush it arrived in. */
struct TraceRec
{
    uint64_t addr;
    uint32_t meta;
    uint64_t chunk;

    bool
    operator==(const TraceRec &o) const
    {
        return addr == o.addr && meta == o.meta && chunk == o.chunk;
    }
};

/**
 * One executor per execution mode, each over its own device memory so
 * Full-mode stores can be compared byte for byte afterwards. The
 * allocators run in lockstep, so buffers land at the same addresses.
 */
class ExecModePair
{
  public:
    ExecModePair()
        : config(DeviceConfig::hd4000()), memScalar(memBytes),
          memGang(memBytes), execScalar(config, memScalar),
          execGang(config, memGang)
    {
        execScalar.setBackend(Executor::Backend::Uops);
        execGang.setBackend(Executor::Backend::Uops);
        execScalar.setExecMode(Executor::ExecMode::Scalar);
        execGang.setExecMode(Executor::ExecMode::Gang);
    }

    uint64_t
    allocate(uint64_t size)
    {
        uint64_t addr = memScalar.allocate(size);
        uint64_t addr2 = memGang.allocate(size);
        GT_ASSERT(addr == addr2, "exec-mode allocators diverged");
        return addr;
    }

    /** Run the dispatch under both modes; expect equal profiles. */
    void
    runBoth(const Dispatch &d, Executor::Mode mode,
            TraceBuffer *trace_scalar = nullptr,
            TraceBuffer *trace_gang = nullptr)
    {
        ExecProfile ps = execScalar.run(d, mode, trace_scalar);
        ExecProfile pg = execGang.run(d, mode, trace_gang);
        expectProfilesEqual(ps, pg);
    }

    /**
     * Run with batched trace delivery under both modes; expect equal
     * profiles and an identical record stream including chunk flush
     * boundaries. @p chunk stresses mid-thread flushes when small.
     */
    void
    runBothBatch(const Dispatch &d, size_t chunk)
    {
        auto capture = [](std::vector<TraceRec> &out, uint64_t &n) {
            return [&out, &n](const MemBatch &batch) {
                for (size_t i = 0; i < batch.count; ++i) {
                    out.push_back(
                        {batch.addrs[i], batch.metas[i], n});
                }
                ++n;
            };
        };
        std::vector<TraceRec> recScalar, recGang;
        uint64_t chunksScalar = 0, chunksGang = 0;
        MemBatchFn fnScalar = capture(recScalar, chunksScalar);
        MemBatchFn fnGang = capture(recGang, chunksGang);
        execScalar.setMemTraceChunk(chunk);
        execGang.setMemTraceChunk(chunk);
        ExecProfile ps = execScalar.run(d, Executor::Mode::Full,
                                        nullptr, {}, fnScalar);
        ExecProfile pg = execGang.run(d, Executor::Mode::Full,
                                      nullptr, {}, fnGang);
        expectProfilesEqual(ps, pg);
        EXPECT_EQ(chunksScalar, chunksGang);
        ASSERT_EQ(recScalar.size(), recGang.size());
        EXPECT_TRUE(recScalar == recGang)
            << "memory-trace record streams diverged";
    }

    /** Compare the first @p bytes of both device memories. */
    void
    expectMemoryEqual(uint64_t bytes)
    {
        for (uint64_t a = 0; a + 4 <= bytes; a += 4) {
            ASSERT_EQ(memScalar.read32(a), memGang.read32(a))
                << "memory diverged at address " << a;
        }
    }

    DeviceConfig config;
    DeviceMemory memScalar;
    DeviceMemory memGang;
    Executor execScalar;
    Executor execGang;
};

/** Templates whose plan-time verdict is gang-safe (regionForm). */
const std::set<std::string> &
gangSafeTemplates()
{
    static const std::set<std::string> safe = {
        "aes", "ao", "blend", "blur", "cascade", "flow", "hash",
        "julia", "lut", "matmul", "particle", "reduce", "scan",
        "stream", "stress",
    };
    return safe;
}

class GangDiff : public ::testing::TestWithParam<std::string>
{
  protected:
    KernelBinary
    compile(int64_t leading = 8)
    {
        isa::KernelSource src;
        src.name = "gang_" + GetParam();
        src.templateName = GetParam();
        src.params = {leading};
        return workloads::TemplateJit().compile(src);
    }

    /**
     * Kernels whose gang verdict carries dispatch-time region checks
     * get *distinct* per-argument buffers — aliased args would
     * violate the checks and silently pin scalar execution. The rest
     * use the shared-base idiom of test_interp (some templates derive
     * trip counts from args; the shared base keeps those small).
     */
    Dispatch
    dispatchFor(const KernelBinary &bin, uint64_t gws = 16 * 24)
    {
        Dispatch d;
        d.binary = &bin;
        d.globalSize = gws;
        d.simdWidth = 16;
        if (pair.execGang.gangSafety(&bin).checks.empty()) {
            uint32_t base = (uint32_t)pair.allocate(argBufBytes);
            d.args.assign(bin.numArgs, base);
        } else {
            for (uint32_t a = 0; a < bin.numArgs; ++a)
                d.args.push_back((uint32_t)pair.allocate(argBufBytes));
        }
        return d;
    }

    KernelBinary
    instrument(const KernelBinary &bin, uint32_t &num_slots)
    {
        SlotAllocator slots;
        Instrumenter ins(bin, slots);
        for (const auto &block : bin.blocks) {
            ins.countBlockEntry(block.id, ins.allocSlot(),
                                (uint32_t)block.instrs.size());
        }
        ins.timeKernel(ins.allocSlot());
        num_slots = slots.allocated();
        return ins.apply();
    }

    bool
    expectGanged() const
    {
        return gangSafeTemplates().count(GetParam()) != 0;
    }

    ExecModePair pair;
};

TEST_P(GangDiff, PlanVerdictMatchesExpectation)
{
    KernelBinary bin = compile();
    const isa::GangSafety &g = pair.execGang.gangSafety(&bin);
    EXPECT_EQ(g.regionForm, expectGanged())
        << "gang-safety verdict changed for " << GetParam();
    if (g.regionForm) {
        EXPECT_LE(g.minSimdWidth, 16);
        EXPECT_FALSE(g.regions.empty());
    }
}

TEST_P(GangDiff, FullModePlain)
{
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    pair.runBoth(d, Executor::Mode::Full);
    EXPECT_FALSE(pair.execScalar.lastRunGanged());
    EXPECT_EQ(pair.execGang.lastRunGanged(), expectGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST_P(GangDiff, FastModePlain)
{
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    pair.runBoth(d, Executor::Mode::Fast);
    // Fast mode never gangs: representative or relevance-sliced
    // threads stay on the scalar path.
    EXPECT_FALSE(pair.execGang.lastRunGanged());
}

TEST_P(GangDiff, FullModeInstrumented)
{
    KernelBinary bin = compile();
    uint32_t num_slots = 0;
    KernelBinary rewritten = instrument(bin, num_slots);
    Dispatch d = dispatchFor(rewritten);
    TraceBuffer ts(num_slots), tg(num_slots);
    pair.runBoth(d, Executor::Mode::Full, &ts, &tg);
    EXPECT_EQ(ts.raw(), tg.raw());
    EXPECT_EQ(pair.execGang.lastRunGanged(), expectGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST_P(GangDiff, FastModeInstrumented)
{
    KernelBinary bin = compile();
    uint32_t num_slots = 0;
    KernelBinary rewritten = instrument(bin, num_slots);
    Dispatch d = dispatchFor(rewritten);
    TraceBuffer ts(num_slots), tg(num_slots);
    pair.runBoth(d, Executor::Mode::Fast, &ts, &tg);
    EXPECT_EQ(ts.raw(), tg.raw());
}

TEST_P(GangDiff, BatchMemTraceBitwiseOrder)
{
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    // A chunk smaller than one gang's records forces flushes from
    // inside the per-slot drain; scalar boundaries must reproduce.
    pair.runBothBatch(d, 96);
    EXPECT_EQ(pair.execGang.lastRunGanged(), expectGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST_P(GangDiff, SharedBufferFallsBackAndMatches)
{
    KernelBinary bin = compile();
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 24;
    d.simdWidth = 16;
    uint32_t base = (uint32_t)pair.allocate(argBufBytes);
    d.args.assign(bin.numArgs, base);
    pair.runBoth(d, Executor::Mode::Full);
    const isa::GangSafety &g = pair.execGang.gangSafety(&bin);
    if (!g.checks.empty()) {
        // Aliased buffers violate the dispatch-time region checks:
        // the gang executor must detect it and run scalar.
        EXPECT_FALSE(pair.execGang.lastRunGanged());
    }
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST_P(GangDiff, PartialAndSingleGangs)
{
    KernelBinary bin = compile();
    // 13 threads = one full gang + a 5-slot gang; 9 = gang + lone
    // thread (scalar tail); 1 = single-thread dispatch.
    for (uint64_t threads : {13, 9, 1}) {
        Dispatch d = dispatchFor(bin, 16 * threads);
        pair.runBoth(d, Executor::Mode::Full);
    }
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST_P(GangDiff, ExecutorReuseInvariance)
{
    // Back-to-back dispatches reuse the executor's gang context and
    // scratch buffers; a second run must reproduce the first exactly
    // (no state leaking through the reused SoA block or dirty lists).
    KernelBinary bin = compile();
    Dispatch d = dispatchFor(bin);
    ExecProfile first = pair.execGang.run(d, Executor::Mode::Full);
    ExecProfile second = pair.execGang.run(d, Executor::Mode::Full);
    expectProfilesEqual(first, second);
    // Matching dispatch count on the scalar side: templates that
    // update buffers in place (particle) evolve state per run.
    pair.execScalar.run(d, Executor::Mode::Full);
    ExecProfile scalar = pair.execScalar.run(d, Executor::Mode::Full);
    expectProfilesEqual(scalar, second);
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, GangDiff,
    ::testing::ValuesIn(workloads::builtinTemplates().templateNames()),
    [](const auto &info) { return info.param; });

// --- control divergence at superblock boundaries -----------------------

/**
 * Thread-dependent divergence via cascade: threads peel off into a
 * heavier path depending on their id, so gang slots retire at
 * superblock boundaries and finish scalar.
 */
class GangCascade : public ::testing::Test
{
  protected:
    KernelBinary
    compileCascade(int64_t blocks, int64_t mask, int64_t depth)
    {
        isa::KernelSource src;
        src.name = "gang_casc";
        src.templateName = "cascade";
        src.params = {blocks, mask, depth};
        return workloads::TemplateJit().compile(src);
    }

    ExecModePair pair;
};

TEST_F(GangCascade, DivergentThreadsMatchScalar)
{
    KernelBinary bin = compileCascade(12, 0xfff, 8);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 64;
    d.simdWidth = 16;
    uint32_t in = (uint32_t)pair.allocate(argBufBytes);
    uint32_t out = (uint32_t)pair.allocate(argBufBytes);
    d.args = {in, out, 2, 0};
    pair.runBoth(d, Executor::Mode::Full);
    EXPECT_TRUE(pair.execGang.lastRunGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST_F(GangCascade, BatchTraceSurvivesRetirement)
{
    // Retired slots keep appending to their per-slot record buffers;
    // the drained stream must still be in scalar thread order.
    KernelBinary bin = compileCascade(12, 0xfff, 8);
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 64;
    d.simdWidth = 16;
    uint32_t in = (uint32_t)pair.allocate(argBufBytes);
    uint32_t out = (uint32_t)pair.allocate(argBufBytes);
    d.args = {in, out, 2, 0};
    pair.runBothBatch(d, 64);
    EXPECT_TRUE(pair.execGang.lastRunGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

/** Divergence decided by the very first compare: every gang splits at
 * the first superblock boundary. */
TEST(GangDivergence, FirstSuperblock)
{
    KernelBuilder b("first_div", 1);
    Reg tid = b.reg();
    b.mov(tid, b.dispatchInfo(), 1);
    Reg bit = b.reg();
    b.and_(bit, tid, imm(1), 1);
    Flag f = b.flag();
    b.cmp(isa::CmpOp::Ne, f, bit, imm(0), 1);
    b.brnc(f, "skip");
    // Odd threads: extra arithmetic before the common store.
    Reg acc = b.reg();
    b.mov(acc, imm(3), 16);
    for (int i = 0; i < 8; ++i)
        b.mul(acc, acc, acc, 16);
    b.label("skip");
    // Masked-index region form (as laneAddr emits it), so the safety
    // analysis accepts the kernel and the gang actually engages.
    Reg idx = b.reg();
    b.and_(idx, b.globalIds(), imm(0xffff), 16);
    Reg addr = b.reg();
    b.shl(addr, idx, imm(2), 16);
    b.add(addr, addr, b.arg(0), 16);
    b.store(b.globalIds(), addr, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    ExecModePair pair;
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 24;
    d.simdWidth = 16;
    d.args = {(uint32_t)pair.allocate(argBufBytes)};
    ExecProfile ps = pair.execScalar.run(d, Executor::Mode::Full);
    ExecProfile pg = pair.execGang.run(d, Executor::Mode::Full);
    expectProfilesEqual(ps, pg);
    EXPECT_TRUE(pair.execGang.lastRunGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

/** Divergence on the last superblock: odd threads take a longer exit
 * path after the common body. */
TEST(GangDivergence, LastSuperblock)
{
    KernelBuilder b("last_div", 1);
    Reg idx = b.reg();
    b.and_(idx, b.globalIds(), imm(0xffff), 16);
    Reg addr = b.reg();
    b.shl(addr, idx, imm(2), 16);
    b.add(addr, addr, b.arg(0), 16);
    b.store(b.globalIds(), addr, 4, 16);
    Reg tid = b.reg();
    b.mov(tid, b.dispatchInfo(), 1);
    Reg bit = b.reg();
    b.and_(bit, tid, imm(1), 1);
    Flag f = b.flag();
    b.cmp(isa::CmpOp::Ne, f, bit, imm(0), 1);
    b.brnc(f, "skip");
    Reg acc = b.reg();
    b.mov(acc, imm(5), 16);
    for (int i = 0; i < 8; ++i)
        b.add(acc, acc, acc, 16);
    b.label("skip");
    b.halt();
    KernelBinary bin = b.finish();

    ExecModePair pair;
    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 24;
    d.simdWidth = 16;
    d.args = {(uint32_t)pair.allocate(argBufBytes)};
    ExecProfile ps = pair.execScalar.run(d, Executor::Mode::Full);
    ExecProfile pg = pair.execGang.run(d, Executor::Mode::Full);
    expectProfilesEqual(ps, pg);
    EXPECT_TRUE(pair.execGang.lastRunGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

// --- aliasing stores must force gangSafe = false -----------------------

TEST(GangSafety, AliasingStoresPinScalar)
{
    // Every thread stores its ids to the *same* address (arg0): a
    // cross-thread last-writer race that lockstep would reorder. The
    // analysis must refuse region form, and results must still match
    // via the scalar fallback.
    KernelBuilder b("alias", 1);
    Reg addr = b.reg();
    b.mov(addr, b.arg(0), 16);
    b.store(b.globalIds(), addr, 4, 16);
    b.halt();
    KernelBinary bin = b.finish();

    ExecModePair pair;
    const isa::GangSafety &g = pair.execGang.gangSafety(&bin);
    EXPECT_FALSE(g.regionForm);

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 16 * 24;
    d.simdWidth = 16;
    d.args = {(uint32_t)pair.allocate(argBufBytes)};
    ExecProfile ps = pair.execScalar.run(d, Executor::Mode::Full);
    ExecProfile pg = pair.execGang.run(d, Executor::Mode::Full);
    expectProfilesEqual(ps, pg);
    EXPECT_FALSE(pair.execGang.lastRunGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

TEST(GangSafety, SimdWidthGuard)
{
    // stress proves safe only through the per-id no-collision route,
    // which needs distinct ids across the gang: a SIMD-8 dispatch of
    // its width-16 sends duplicates ids, so the dispatch guard must
    // pin scalar execution (and results still match).
    isa::KernelSource src;
    src.name = "gang_stress8";
    src.templateName = "stress";
    src.params = {8};
    KernelBinary bin = workloads::TemplateJit().compile(src);

    ExecModePair pair;
    const isa::GangSafety &g = pair.execGang.gangSafety(&bin);
    ASSERT_TRUE(g.regionForm);
    ASSERT_GT(g.minSimdWidth, 8);

    Dispatch d;
    d.binary = &bin;
    d.globalSize = 8 * 24;
    d.simdWidth = 8;
    for (uint32_t a = 0; a < bin.numArgs; ++a)
        d.args.push_back((uint32_t)pair.allocate(argBufBytes));
    ExecProfile ps = pair.execScalar.run(d, Executor::Mode::Full);
    ExecProfile pg = pair.execGang.run(d, Executor::Mode::Full);
    expectProfilesEqual(ps, pg);
    EXPECT_FALSE(pair.execGang.lastRunGanged());
    pair.expectMemoryEqual(pair.memScalar.allocated());
}

} // anonymous namespace
} // namespace gt::gpu
