/**
 * @file
 * Reproduces Table I: the 25-application suite inventory with its
 * three sources (CompuBench CL 1.2 desktop and mobile, SiSoftware
 * Sandra 2014, Sony Vegas Pro 2013).
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    TextTable table({"source", "application", "domain"});
    std::string last_suite;
    for (const workloads::Workload *w : workloads::workloadSuite()) {
        const workloads::WorkloadInfo &info = w->info();
        if (!last_suite.empty() && info.suite != last_suite)
            table.addSeparator();
        table.addRow({info.suite == last_suite ? "" : info.suite,
                      info.name, info.domain});
        last_suite = info.suite;
    }
    table.print(std::cout, "Table I: Benchmarks used in this study");
    std::cout << "\n(paper: 15 CompuBench CL 1.2 apps, 3 SiSoftware "
                 "Sandra 2014 apps,\n 7 Sony Vegas Pro 2013 press "
                 "project regions; 25 total)\n";
    return 0;
}
