/**
 * @file
 * Feature-engine benchmark: the std::map reference extractor vs. the
 * columnar DispatchFeatureCache, per feature kind, plus the
 * end-to-end 30-configuration exploration both ways.
 *
 * Per-kind cases time extraction over a workload's SingleKernel
 * intervals (the most extraction-bound scheme: one vector per
 * dispatch). The flat cases time extraction through a prebuilt cache
 * — the engine's usage model is one lowering per workload shared by
 * every consumer — while the end-to-end explore cases construct the
 * engine inside the timed region, so its build cost counts against
 * the flat path there.
 *
 * Paired timings yield per-case speedups and geometric means,
 * written to BENCH_features.json (and summarized on stdout) so the
 * README's perf numbers are reproducible with:
 *
 *     build/bench/feature_engine
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "core/explorer.hh"
#include "core/feature_engine.hh"
#include "core/pipeline.hh"
#include "workloads/workload.hh"

using namespace gt;
using namespace gt::core;

namespace
{

// The extraction-heavy workloads of the suite (largest lowered
// profiles): the engine exists for exactly this shape of input —
// on tiny workloads (tens of block entries) exploreConfigs is
// k-means-bound and both backends tie.
const std::vector<std::string> benchApps = {
    "cb-graphics-t-rex",
    "cb-graphics-provence",
    "cb-vision-facedetect-mobile",
};

struct BenchApp
{
    std::string name;
    ProfiledApp app;
    std::vector<Interval> intervals; //!< SingleKernel division
};

std::vector<BenchApp> &
apps()
{
    static std::vector<BenchApp> profiled = [] {
        setLogQuiet(true);
        std::vector<BenchApp> out;
        for (const std::string &name : benchApps) {
            const workloads::Workload *w =
                workloads::findWorkload(name);
            GT_ASSERT(w, "unknown workload ", name);
            BenchApp b;
            b.name = name;
            b.app = profileApp(*w);
            b.intervals = buildIntervals(
                b.app.db, IntervalScheme::SingleKernel);
            out.push_back(std::move(b));
        }
        return out;
    }();
    return profiled;
}

void
runExtractMap(benchmark::State &state, const BenchApp &b,
              FeatureKind kind)
{
    uint64_t dims = 0;
    for (auto _ : state) {
        for (const Interval &iv : b.intervals) {
            FeatureVector vec =
                extractFeaturesMap(b.app.db, iv, kind);
            dims += vec.dims();
            benchmark::DoNotOptimize(vec);
        }
    }
    state.counters["vectors"] = (double)b.intervals.size();
    benchmark::DoNotOptimize(dims);
}

void
runExtractFlat(benchmark::State &state, const BenchApp &b,
               FeatureKind kind)
{
    DispatchFeatureCache cache(b.app.db);
    DispatchFeatureCache::Scratch scratch;
    uint64_t dims = 0;
    for (auto _ : state) {
        for (const Interval &iv : b.intervals) {
            FeatureVector vec = cache.extract(iv, kind, scratch);
            dims += vec.dims();
            benchmark::DoNotOptimize(vec);
        }
    }
    state.counters["vectors"] = (double)b.intervals.size();
    benchmark::DoNotOptimize(dims);
}

void
runExplore(benchmark::State &state, const BenchApp &b,
           FeatureBackend backend)
{
    // One thread: measure the engine, not the pool; the fan-out is
    // bit-identical at any width (see exploreConfigs).
    sched::ThreadPool pool(1);
    simpoint::ClusterOptions options;
    options.pool = &pool;
    for (auto _ : state) {
        FeatureEngine engine(b.app.db, backend);
        Exploration ex =
            exploreConfigs(b.app.db, options, 0, &engine);
        benchmark::DoNotOptimize(ex.results.data());
    }
}

std::string
extractCase(const std::string &app, FeatureKind kind,
            const char *backend)
{
    return "extract/" + app + "/" + featureKindName(kind) + "/" +
           backend;
}

std::string
exploreCase(const std::string &app, const char *backend)
{
    return "explore/" + app + "/" + backend;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    for (const BenchApp &b : apps()) {
        for (int k = 0; k < numFeatureKinds; ++k) {
            FeatureKind kind = (FeatureKind)k;
            benchmark::RegisterBenchmark(
                extractCase(b.name, kind, "map").c_str(),
                [&b, kind](benchmark::State &st) {
                    runExtractMap(st, b, kind);
                })
                ->MinTime(0.1)
                ->Unit(benchmark::kMicrosecond);
            benchmark::RegisterBenchmark(
                extractCase(b.name, kind, "flat").c_str(),
                [&b, kind](benchmark::State &st) {
                    runExtractFlat(st, b, kind);
                })
                ->MinTime(0.1)
                ->Unit(benchmark::kMicrosecond);
        }
        for (const char *backend : {"map", "flat"}) {
            FeatureBackend be = backend[0] == 'm'
                ? FeatureBackend::Map
                : FeatureBackend::Flat;
            benchmark::RegisterBenchmark(
                exploreCase(b.name, backend).c_str(),
                [&b, be](benchmark::State &st) {
                    runExplore(st, b, be);
                })
                ->MinTime(0.1)
                ->Unit(benchmark::kMillisecond);
        }
    }

    bench::CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    bench::BenchReport report("BENCH_features.json");
    bench::GeoMean extract_geo, explore_geo;
    for (const BenchApp &b : apps()) {
        for (int k = 0; k < numFeatureKinds; ++k) {
            FeatureKind kind = (FeatureKind)k;
            auto mp =
                reporter.times.find(extractCase(b.name, kind, "map"));
            auto fl = reporter.times.find(
                extractCase(b.name, kind, "flat"));
            if (mp == reporter.times.end() ||
                fl == reporter.times.end()) {
                continue;
            }
            double speedup = mp->second / fl->second;
            extract_geo.add(speedup);
            report.addRow("extract")
                .field("app", b.name)
                .field("kind", featureKindName(kind))
                .field("map_ns", mp->second)
                .field("flat_ns", fl->second)
                .field("speedup", speedup);
        }
    }
    for (const BenchApp &b : apps()) {
        auto mp = reporter.times.find(exploreCase(b.name, "map"));
        auto fl = reporter.times.find(exploreCase(b.name, "flat"));
        if (mp == reporter.times.end() ||
            fl == reporter.times.end()) {
            continue;
        }
        double speedup = mp->second / fl->second;
        explore_geo.add(speedup);
        report.addRow("explore")
            .field("app", b.name)
            .field("map_ns", mp->second)
            .field("flat_ns", fl->second)
            .field("speedup", speedup);
    }
    std::cout << "\n";
    if (extract_geo.count() > 0) {
        report.scalar("geomean_speedup_extract", extract_geo.value());
        std::cout << "geomean speedup (per-kind extract, flat vs "
                     "map): " << extract_geo.value() << "x\n";
    }
    if (explore_geo.count() > 0) {
        report.scalar("geomean_speedup_explore", explore_geo.value());
        std::cout << "geomean speedup (end-to-end exploreConfigs, "
                     "flat vs map): " << explore_geo.value() << "x\n";
    }
    return report.finish();
}
