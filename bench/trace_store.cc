/**
 * @file
 * Columnar trace-store benchmark: resident memory and exploration
 * query throughput of the on-disk columnar TraceDatabase backend
 * against the fully-resident mem oracle.
 *
 * A large deterministic synthetic suite (hundreds of thousands of
 * joined dispatches) is built once through each backend, then both
 * serve the paper's post-profiling access pattern — interval
 * building under all three schemes, feature-engine lowering,
 * whole-suite extraction, per-dispatch profile scans, and a random
 * mix of range queries — with every result compared bitwise
 * between the backends. Two gates are enforced:
 *
 *  - resident memory must shrink by at least 5x on the columnar
 *    backend (that reduction is the tentpole's reason to exist);
 *  - the columnar query phase must stay within 1.5x of the mem
 *    oracle's wall clock.
 *
 *     cd /path/to/repo && build/bench/trace_store
 *
 * Pass --smoke for the smaller CI variant. Results land in
 * BENCH_tracedb.json.
 */

#include <chrono>
#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/feature_engine.hh"
#include "core/interval.hh"
#include "core/trace_db.hh"

using namespace gt;
using core::TraceDatabase;
using core::TraceDbBackend;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct Inputs
{
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;
    std::vector<ocl::ApiCallRecord> calls;
};

/** A deterministic joined suite shaped like the profiled CB apps:
 * a few dozen distinct kernels re-dispatched many times, small
 * per-kernel block vectors, syncs every handful of kernels. */
Inputs
makeInputs(uint64_t n)
{
    Rng rng(0xbadc0ffee);
    Inputs in;
    in.profiles.reserve(n);
    in.timings.reserve(n);
    uint64_t idx = 0;
    for (uint64_t i = 0; i < n; ++i) {
        uint32_t kernel = (uint32_t)(rng.next() % 48);
        gtpin::DispatchProfile p;
        p.seq = i;
        p.kernelId = kernel;
        p.kernelName = "suite_kernel_" + std::to_string(kernel);
        p.globalWorkSize = 64 << (kernel % 6);
        p.argsHash = rng.next();
        p.args.resize(2 + kernel % 4);
        for (uint32_t &a : p.args)
            a = (uint32_t)rng.next();
        size_t blocks = 2 + kernel % 6;
        p.blockCounts.resize(blocks);
        p.blockLens.resize(blocks);
        p.blockReadBytes.resize(blocks);
        p.blockWriteBytes.resize(blocks);
        for (size_t b = 0; b < blocks; ++b) {
            p.blockCounts[b] = rng.next() % 50000;
            p.blockLens[b] = 4 + (uint32_t)(rng.next() % 28);
            p.instrs += p.blockCounts[b] * p.blockLens[b];
            p.blockReadBytes[b] = (uint32_t)(rng.next() % 2048);
            p.blockWriteBytes[b] = (uint32_t)(rng.next() % 2048);
            p.bytesRead += p.blockCounts[b] * p.blockReadBytes[b];
            p.bytesWritten += p.blockCounts[b] * p.blockWriteBytes[b];
        }
        in.profiles.push_back(std::move(p));

        cfl::KernelTiming t;
        t.seq = i;
        t.kernelName = in.profiles.back().kernelName;
        t.seconds = (double)(rng.next() >> 11) * 0x1.0p-53 * 1e-3;
        in.timings.push_back(t);

        ocl::ApiCallRecord call;
        call.callIndex = idx++;
        call.id = ocl::ApiCallId::EnqueueNDRangeKernel;
        call.dispatchSeq = i;
        in.calls.push_back(call);
        if (rng.next() % 9 == 0) {
            ocl::ApiCallRecord sync;
            sync.callIndex = idx++;
            sync.id = ocl::ApiCallId::Finish;
            in.calls.push_back(sync);
        }
    }
    return in;
}

/** One pass of the post-profiling access pattern; returns a
 * checksum folding every queried value, so backends can be compared
 * and the work cannot be dead-code-eliminated. */
double
queryPass(const TraceDatabase &db)
{
    double checksum = 0.0;

    // Interval building under all three schemes (prefix queries).
    std::vector<core::Interval> kept;
    for (core::IntervalScheme scheme :
         {core::IntervalScheme::SyncBounded,
          core::IntervalScheme::ApproxInstructions,
          core::IntervalScheme::SingleKernel}) {
        auto intervals = core::buildIntervals(db, scheme);
        checksum += (double)intervals.size();
        for (const core::Interval &iv : intervals) {
            checksum += iv.seconds + (double)(iv.instrs % 1021);
        }
        if (scheme == core::IntervalScheme::ApproxInstructions)
            kept = std::move(intervals);
    }

    // Feature lowering + whole-suite extraction (profile scans).
    core::FeatureEngine engine(db, core::FeatureBackend::Flat);
    for (core::FeatureKind kind :
         {core::FeatureKind::KN, core::FeatureKind::BB_R_W}) {
        auto vectors = engine.extractAll(kept, kind);
        for (const core::FeatureVector &vec : vectors) {
            for (double v : vec.values())
                checksum += v;
        }
    }

    // The validators' sequential per-dispatch profile walk.
    for (uint64_t d = 0; d < db.numDispatches(); ++d)
        checksum += (double)(db.profileAt(d).instrs % 4093);

    // Random range queries (fig6/fig8-style replay accounting).
    Rng rng(0x5eed);
    const uint64_t n = db.numDispatches();
    for (int i = 0; i < 2000; ++i) {
        uint64_t first = rng.next() % n;
        uint64_t last =
            std::min(n - 1, first + rng.next() % 2048);
        checksum += (double)(db.rangeInstrs(first, last) % 8191) +
                    db.rangeSeconds(first, last);
    }
    checksum += db.measuredSpi() + db.totalSeconds() +
                (double)(db.totalInstrs() % 65521);
    return checksum;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const bool smoke = bench::stripSmokeFlag(argc, argv);
    const uint64_t n = smoke ? 40000 : 250000;

    Inputs in = makeInputs(n);
    std::cout << "synthetic suite: " << n << " dispatches, "
              << in.calls.size() << " api calls\n";

    auto build = [&](TraceDbBackend backend, double &seconds) {
        auto profiles = in.profiles;
        auto t0 = std::chrono::steady_clock::now();
        TraceDatabase db =
            TraceDatabase::build(std::move(profiles), in.timings,
                                 in.calls, backend);
        seconds = secondsSince(t0);
        return db;
    };

    double mem_build_s = 0.0, col_build_s = 0.0;
    TraceDatabase mem = build(TraceDbBackend::Mem, mem_build_s);
    TraceDatabase col = build(TraceDbBackend::Columnar, col_build_s);

    const core::TraceDbFootprint fm = mem.memoryFootprint();
    const core::TraceDbFootprint fc = col.memoryFootprint();
    const double shrink =
        (double)fm.residentBytes / (double)fc.residentBytes;
    std::cout << "resident: mem " << humanBytes(fm.residentBytes)
              << " -> columnar " << humanBytes(fc.residentBytes)
              << "  (" << fixed(shrink, 1) << "x smaller; spill "
              << humanBytes(fc.fileBytes) << " on disk)\n";

    // Two timed passes per backend, keeping the faster one; results
    // must agree bitwise between backends on every pass.
    auto time_queries = [&](const TraceDatabase &db,
                            double &checksum) {
        double best = 1e30;
        for (int rep = 0; rep < 2; ++rep) {
            auto t0 = std::chrono::steady_clock::now();
            double sum = queryPass(db);
            best = std::min(best, secondsSince(t0));
            if (rep == 0)
                checksum = sum;
            GT_ASSERT(sum == checksum,
                      "query pass not deterministic");
        }
        return best;
    };

    double mem_sum = 0.0, col_sum = 0.0;
    double mem_query_s = time_queries(mem, mem_sum);
    double col_query_s = time_queries(col, col_sum);
    GT_ASSERT(mem_sum == col_sum,
              "columnar query results diverge from the mem oracle");

    const double ratio = col_query_s / mem_query_s;
    std::cout << "query pass: mem " << fixed(mem_query_s, 3)
              << " s, columnar " << fixed(col_query_s, 3) << " s  ("
              << fixed(ratio, 2) << "x; bitwise-equal checksums)\n"
              << "build: mem " << fixed(mem_build_s, 3)
              << " s, columnar " << fixed(col_build_s, 3) << " s\n";

    bench::BenchReport report("BENCH_tracedb.json");
    report.scalar("dispatches", n);
    report.scalar("mem_resident_bytes", fm.residentBytes);
    report.scalar("columnar_resident_bytes", fc.residentBytes);
    report.scalar("columnar_file_bytes", fc.fileBytes);
    report.scalar("resident_shrink", shrink);
    report.scalar("mem_query_s", mem_query_s);
    report.scalar("columnar_query_s", col_query_s);
    report.scalar("query_ratio", ratio);
    report.scalar("mem_build_s", mem_build_s);
    report.scalar("columnar_build_s", col_build_s);
    report.gate("shrink_gate", shrink >= 5.0,
                "columnar resident-memory reduction regressed below "
                "5x: " + std::to_string(shrink));
    report.gate("query_gate", ratio <= 1.5,
                "columnar query throughput regressed beyond 1.5x of "
                "the mem oracle: " + std::to_string(ratio));
    return report.finish();
}
