/**
 * @file
 * Gang-execution benchmark: Full-mode dispatch throughput of the uop
 * interpreter under scalar per-thread execution vs. gang-lockstep SoA
 * execution (GT_EXEC=scalar|gang), across the whole kernel template
 * library.
 *
 * Each case runs the same dispatch through an Executor pinned to one
 * execution mode; the paired timings yield per-template speedups, a
 * geometric mean over the gang-engaged templates, and a geometric
 * mean over the wide-SIMD set (blur, stream, blend) that the
 * acceptance gate enforces at >= 2x. Results are written to
 * BENCH_gang.json (and summarized on stdout) so the README's perf
 * numbers are reproducible with:
 *
 *     build/bench/gang_exec            # full run, enforces the gate
 *     build/bench/gang_exec --smoke    # quick CI sanity pass
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "gpu/executor.hh"
#include "workloads/templates.hh"

using namespace gt;

namespace
{

/** Leading template parameter (trip count / size knob) per case. */
constexpr int64_t leadingParam = 8;

/** Work items per dispatch (64 hardware threads at SIMD16). */
constexpr uint64_t benchGlobalSize = 16 * 64;

/** Templates the >= 2x geomean acceptance gate runs over: wide-SIMD
 * streaming kernels where lockstep should pay off most. */
const std::set<std::string> wideSimdSet = {"blur", "stream", "blend"};

/** Did the gang executor actually gang this template's dispatch? */
std::map<std::string, bool> gangEngaged;

void
runExec(benchmark::State &state, const std::string &tmpl,
        gpu::Executor::ExecMode exec_mode)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "bench_" + tmpl;
    src.templateName = tmpl;
    src.params = {leadingParam};
    isa::KernelBinary bin = jit.compile(src);

    gpu::DeviceMemory mem(32 << 20);
    gpu::Executor exec(gpu::DeviceConfig::hd4000(), mem);
    exec.setBackend(gpu::Executor::Backend::Uops);
    exec.setExecMode(exec_mode);

    gpu::Dispatch d;
    d.binary = &bin;
    d.globalSize = benchGlobalSize;
    d.simdWidth = 16;
    // Kernels whose gang verdict carries dispatch-time region checks
    // need distinct per-arg buffers (aliased args would pin scalar
    // execution); the rest use a shared base, which keeps args some
    // templates reinterpret as trip counts small.
    if (exec.gangSafety(&bin).checks.empty()) {
        d.args.assign(bin.numArgs, (uint32_t)mem.allocate(4 << 20));
    } else {
        for (uint32_t a = 0; a < bin.numArgs; ++a)
            d.args.push_back((uint32_t)mem.allocate(1 << 19));
    }

    uint64_t instrs = 0;
    for (auto _ : state) {
        gpu::ExecProfile p = exec.run(d, gpu::Executor::Mode::Full);
        instrs += p.dynInstrs;
        benchmark::DoNotOptimize(p.dynInstrs);
    }
    if (exec_mode == gpu::Executor::ExecMode::Gang)
        gangEngaged[tmpl] = exec.lastRunGanged();
    state.counters["interp_instrs_per_s"] = benchmark::Counter(
        (double)instrs, benchmark::Counter::kIsRate);
}

std::string
caseName(const std::string &tmpl, const char *exec_name)
{
    return "gang/" + tmpl + "/full/" + exec_name;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::stripSmokeFlag(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    const std::vector<std::string> templates =
        workloads::builtinTemplates().templateNames();

    const std::pair<const char *, gpu::Executor::ExecMode> execs[] = {
        {"scalar", gpu::Executor::ExecMode::Scalar},
        {"gang", gpu::Executor::ExecMode::Gang},
    };

    const double min_time = smoke ? 0.01 : 0.1;
    for (const std::string &tmpl : templates) {
        for (const auto &[exec_name, exec_mode] : execs) {
            benchmark::RegisterBenchmark(
                caseName(tmpl, exec_name).c_str(),
                [tmpl, exec_mode](benchmark::State &st) {
                    runExec(st, tmpl, exec_mode);
                })
                ->MinTime(min_time)
                ->Unit(benchmark::kMicrosecond);
        }
    }

    bench::CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // Pair up the timings: per-template speedups, a geomean over the
    // templates the gang path engaged on, and the enforced wide-SIMD
    // geomean.
    bench::BenchReport report("BENCH_gang.json");
    bench::GeoMean geoGanged, geoWide;
    for (const std::string &tmpl : templates) {
        auto sc = reporter.times.find(caseName(tmpl, "scalar"));
        auto ga = reporter.times.find(caseName(tmpl, "gang"));
        if (sc == reporter.times.end() || ga == reporter.times.end())
            continue;
        double speedup = sc->second / ga->second;
        bool ganged = gangEngaged[tmpl];
        if (ganged)
            geoGanged.add(speedup);
        if (wideSimdSet.count(tmpl))
            geoWide.add(speedup);
        report.addRow()
            .field("template", tmpl)
            .field("mode", "full")
            .field("scalar_ns", sc->second)
            .field("gang_ns", ga->second)
            .field("speedup", speedup)
            .field("ganged", ganged);
    }

    std::cout << "\n";
    report.scalar("geomean_speedup_ganged", geoGanged.value());
    report.scalar("geomean_speedup_wide_simd", geoWide.value());
    std::cout << "geomean speedup (Full mode, gang vs scalar, "
              << geoGanged.count()
              << " gang-engaged templates): " << geoGanged.value()
              << "x\n";
    std::cout << "geomean speedup (wide-SIMD set blur/stream/blend): "
              << geoWide.value() << "x\n";

    // Acceptance gates. The wide-SIMD >= 2x bound is the PR's headline
    // claim; the engagement check keeps the numbers honest (a silent
    // fallback to scalar would "pass" with a 1.0x speedup otherwise).
    bool engaged = true;
    for (const std::string &tmpl : wideSimdSet)
        engaged = engaged && gangEngaged[tmpl];
    report.gate("wide_simd_gate",
                engaged && (smoke || geoWide.value() >= 2.0),
                "wide-SIMD gang gate: engaged=" +
                    std::string(engaged ? "yes" : "no") +
                    ", geomean " + std::to_string(geoWide.value()) +
                    "x (enforced bound 2x)");
    return report.finish();
}
