/**
 * @file
 * Reproduces Figure 8: timed validation of one trial's selections
 * across (top) later trials on the same machine, (middle) lower GPU
 * frequencies, and (bottom) the next architecture generation.
 *
 * Method, as in Section V-E: each application is profiled once (the
 * CoFluent-style recording is captured), its error-minimizing
 * selection is fixed, and the recording is then replayed under the
 * new conditions; the trial-1 selection plus ratios project the
 * replayed trial's whole-program SPI, which is compared against the
 * replayed trial's measured SPI.
 *
 * Paper: most errors below 3% in all three plots; the cross-
 * architecture worst case is gaussian-image at 11%; LuxMark scores
 * are 269 (HD4000) vs 351 (HD4600).
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "gpu/luxmark.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    const std::vector<double> freqs{1000, 850, 700, 550, 350};

    TextTable trials_table(
        {"application", "min", "avg", "max (trials 2-10)"});
    TextTable freq_table({"application", "1000MHz", "850MHz",
                          "700MHz", "550MHz", "350MHz"});
    TextTable arch_table({"application", "error on HD4600"});

    RunningStat all_trials, all_freqs, all_arch;

    for (const std::string &name : bench::paperOrder()) {
        const core::ProfiledApp &app = bench::profiledApp(name);
        const core::SubsetSelection &sel =
            core::pickMinError(bench::exploration(name)).selection;

        // Top: trials 2-10 on the same machine and frequency.
        RunningStat trial_err;
        for (uint64_t trial_no = 2; trial_no <= 10; ++trial_no) {
            gpu::TrialConfig t;
            t.noiseSeed = 1000 + trial_no;
            core::TraceDatabase db = core::replayTrial(
                app.recording, gpu::DeviceConfig::hd4000(), t);
            double e = core::selectionErrorPct(db, sel);
            trial_err.add(e);
            all_trials.add(e);
        }
        trials_table.addRow(
            {name, pct(trial_err.min() / 100.0, 2),
             pct(trial_err.mean() / 100.0, 2),
             pct(trial_err.max() / 100.0, 2)});

        // Middle: reduced GPU frequencies.
        std::vector<std::string> cells{name};
        for (double freq : freqs) {
            gpu::TrialConfig t;
            t.noiseSeed = 77;
            t.freqMhz = freq;
            core::TraceDatabase db = core::replayTrial(
                app.recording, gpu::DeviceConfig::hd4000(), t);
            double e = core::selectionErrorPct(db, sel);
            cells.push_back(pct(e / 100.0, 2));
            all_freqs.add(e);
        }
        freq_table.addRow(cells);

        // Bottom: the Haswell HD4600.
        gpu::TrialConfig t;
        t.noiseSeed = 99;
        core::TraceDatabase db = core::replayTrial(
            app.recording, gpu::DeviceConfig::hd4600(), t);
        double e = core::selectionErrorPct(db, sel);
        arch_table.addRow({name, pct(e / 100.0, 2)});
        all_arch.add(e);
    }

    trials_table.print(std::cout,
                       "Fig. 8 (top): cross-trial validation");
    std::cout << "average " << pct(all_trials.mean() / 100.0, 2)
              << ", worst " << pct(all_trials.max() / 100.0, 2)
              << "  (paper: mostly <3%, many <1%)\n\n";

    freq_table.print(std::cout,
                     "Fig. 8 (middle): cross-frequency validation "
                     "(selections from 1150MHz)");
    std::cout << "average " << pct(all_freqs.mean() / 100.0, 2)
              << ", worst " << pct(all_freqs.max() / 100.0, 2)
              << "  (paper: mostly <3%)\n\n";

    arch_table.print(std::cout,
                     "Fig. 8 (bottom): cross-architecture "
                     "validation (Ivy Bridge -> Haswell)");
    std::cout << "average " << pct(all_arch.mean() / 100.0, 2)
              << ", worst " << pct(all_arch.max() / 100.0, 2)
              << "  (paper: mostly <3%, worst 11% on "
                 "gaussian-image)\n\n";

    double ivb = gpu::luxmarkScore(gpu::DeviceConfig::hd4000());
    double hsw = gpu::luxmarkScore(gpu::DeviceConfig::hd4600());
    std::cout << "LuxMark-style scores: HD4000 " << fixed(ivb, 0)
              << ", HD4600 " << fixed(hsw, 0)
              << "  (paper: 269 vs 351)\n";
    return 0;
}
