/**
 * @file
 * Reproduces Figure 8: timed validation of one trial's selections
 * across (top) later trials on the same machine, (middle) lower GPU
 * frequencies, and (bottom) the next architecture generation.
 *
 * Method, as in Section V-E: each application is profiled once (the
 * CoFluent-style recording is captured), its error-minimizing
 * selection is fixed, and the recording is then replayed under the
 * new conditions; the trial-1 selection plus ratios project the
 * replayed trial's whole-program SPI, which is compared against the
 * replayed trial's measured SPI.
 *
 * The 25 x 15 replay matrix runs twice: once serially (the
 * pre-scheduler loop) and once as a gt::sched::TaskGraph that hangs
 * each application's 15 replay trials off a per-app selection node.
 * Both paths must produce bit-identical errors — each replay builds
 * a private driver/runtime stack and reads the shared recording and
 * selection const-only — and the bench reports both wall clocks so
 * the serial-to-parallel trajectory lands in the BENCH record.
 *
 * Paper: most errors below 3% in all three plots; the cross-
 * architecture worst case is gaussian-image at 11%; LuxMark scores
 * are 269 (HD4000) vs 351 (HD4600).
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/detailed_validator.hh"
#include "gpu/luxmark.hh"
#include "sched/task_graph.hh"

using namespace gt;

namespace
{

/** One replay trial: everything replayTrial needs plus its result. */
struct ReplayJob
{
    size_t appIdx = 0;
    gpu::DeviceConfig config;
    gpu::TrialConfig trial;
    double errorPct = 0.0;
};

constexpr uint64_t firstTrial = 2, lastTrial = 10;
const std::vector<double> freqSweep{1000, 850, 700, 550, 350};

/** The 15 validation replays per app, in the paper's figure order. */
std::vector<ReplayJob>
makeJobs(const std::vector<std::string> &apps)
{
    std::vector<ReplayJob> jobs;
    for (size_t a = 0; a < apps.size(); ++a) {
        for (uint64_t t = firstTrial; t <= lastTrial; ++t) {
            ReplayJob j;
            j.appIdx = a;
            j.config = gpu::DeviceConfig::hd4000();
            j.trial.noiseSeed = 1000 + t;
            jobs.push_back(j);
        }
        for (double freq : freqSweep) {
            ReplayJob j;
            j.appIdx = a;
            j.config = gpu::DeviceConfig::hd4000();
            j.trial.noiseSeed = 77;
            j.trial.freqMhz = freq;
            jobs.push_back(j);
        }
        ReplayJob j;
        j.appIdx = a;
        j.config = gpu::DeviceConfig::hd4600();
        j.trial.noiseSeed = 99;
        jobs.push_back(j);
    }
    return jobs;
}

void
runJob(ReplayJob &job, const std::vector<std::string> &apps)
{
    const core::ProfiledApp &app = bench::profiledApp(apps[job.appIdx]);
    const core::SubsetSelection &sel =
        core::pickMinError(bench::exploration(apps[job.appIdx]))
            .selection;
    core::TraceDatabase db =
        core::replayTrial(app.recording, job.config, job.trial);
    job.errorPct = core::selectionErrorPct(db, sel);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // anonymous namespace

int
main()
{
    setLogQuiet(true);
    const std::vector<std::string> &apps = bench::paperOrder();

    // Warm the profile/exploration caches through the parallel entry
    // points so both timed passes below measure pure replay work.
    bench::prefetchProfiles();
    bench::prefetchExplorations();

    // Pass 1: the serial path (threads=1 semantics — one replay at a
    // time, in figure order).
    std::vector<ReplayJob> serial_jobs = makeJobs(apps);
    auto t0 = std::chrono::steady_clock::now();
    for (ReplayJob &job : serial_jobs)
        runJob(job, apps);
    double serial_s = secondsSince(t0);

    // Pass 2: the same matrix as a task graph — one selection node
    // per application, its 15 replay trials as dependent tasks.
    std::vector<ReplayJob> par_jobs = makeJobs(apps);
    sched::ThreadPool &pool = sched::ThreadPool::global();
    t0 = std::chrono::steady_clock::now();
    {
        sched::TaskGraph graph;
        constexpr size_t jobs_per_app = 15;
        for (size_t a = 0; a < apps.size(); ++a) {
            sched::TaskGraph::TaskId sel_node = graph.add(
                [&apps, a] {
                    // Materialize the app's selection (cache hit
                    // here; a cold run would profile+explore once
                    // per app, shared by its 15 replays).
                    bench::exploration(apps[a]);
                });
            for (size_t r = 0; r < jobs_per_app; ++r) {
                ReplayJob &job = par_jobs[a * jobs_per_app + r];
                graph.add([&job, &apps] { runJob(job, apps); },
                          {sel_node});
            }
        }
        graph.run(pool);
    }
    double parallel_s = secondsSince(t0);

    // The paths must agree bit for bit before we report either.
    for (size_t i = 0; i < serial_jobs.size(); ++i) {
        GT_ASSERT(serial_jobs[i].errorPct == par_jobs[i].errorPct,
                  "serial/parallel divergence at job ", i);
    }

    TextTable trials_table(
        {"application", "min", "avg", "max (trials 2-10)"});
    TextTable freq_table({"application", "1000MHz", "850MHz",
                          "700MHz", "550MHz", "350MHz"});
    TextTable arch_table({"application", "error on HD4600"});

    RunningStat all_trials, all_freqs, all_arch;

    size_t cursor = 0;
    for (const std::string &name : apps) {
        RunningStat trial_err;
        for (uint64_t t = firstTrial; t <= lastTrial; ++t) {
            double e = serial_jobs[cursor++].errorPct;
            trial_err.add(e);
            all_trials.add(e);
        }
        trials_table.addRow(
            {name, pct(trial_err.min() / 100.0, 2),
             pct(trial_err.mean() / 100.0, 2),
             pct(trial_err.max() / 100.0, 2)});

        std::vector<std::string> cells{name};
        for (size_t f = 0; f < freqSweep.size(); ++f) {
            double e = serial_jobs[cursor++].errorPct;
            cells.push_back(pct(e / 100.0, 2));
            all_freqs.add(e);
        }
        freq_table.addRow(cells);

        double e = serial_jobs[cursor++].errorPct;
        arch_table.addRow({name, pct(e / 100.0, 2)});
        all_arch.add(e);
    }

    trials_table.print(std::cout,
                       "Fig. 8 (top): cross-trial validation");
    std::cout << "average " << pct(all_trials.mean() / 100.0, 2)
              << ", worst " << pct(all_trials.max() / 100.0, 2)
              << "  (paper: mostly <3%, many <1%)\n\n";

    freq_table.print(std::cout,
                     "Fig. 8 (middle): cross-frequency validation "
                     "(selections from 1150MHz)");
    std::cout << "average " << pct(all_freqs.mean() / 100.0, 2)
              << ", worst " << pct(all_freqs.max() / 100.0, 2)
              << "  (paper: mostly <3%)\n\n";

    arch_table.print(std::cout,
                     "Fig. 8 (bottom): cross-architecture "
                     "validation (Ivy Bridge -> Haswell)");
    std::cout << "average " << pct(all_arch.mean() / 100.0, 2)
              << ", worst " << pct(all_arch.max() / 100.0, 2)
              << "  (paper: mostly <3%, worst 11% on "
                 "gaussian-image)\n\n";

    double ivb = gpu::luxmarkScore(gpu::DeviceConfig::hd4000());
    double hsw = gpu::luxmarkScore(gpu::DeviceConfig::hd4600());
    std::cout << "LuxMark-style scores: HD4000 " << fixed(ivb, 0)
              << ", HD4600 " << fixed(hsw, 0)
              << "  (paper: 269 vs 351)\n\n";

    std::cout << "Validation replay wall clock ("
              << serial_jobs.size() << " replays):\n"
              << "  serial    " << fixed(serial_s, 3) << " s\n"
              << "  parallel  " << fixed(parallel_s, 3) << " s  ("
              << pool.threadCount() << " threads, "
              << fixed(serial_s / parallel_s, 2)
              << "x speedup, bit-identical errors)\n\n";

    // Cycle-level spot check of the same replay matrix: the trial-1
    // error-minimizing selection of one small application is
    // detail-validated at the matrix's distinct design points
    // (profiling clock, a lowered clock, the next generation). The
    // serial oracle and the GT_DETAILED machine layer must agree bit
    // for bit; the checkpoint store shares one functional pre-pass
    // per dispatch across all design points of each validator.
    const std::string sample = "cb-gaussian-image";
    const core::ProfiledApp &app = bench::profiledApp(sample);
    const core::SubsetSelection &sel =
        core::pickMinError(bench::exploration(sample)).selection;
    const std::vector<std::pair<std::string, core::DesignPoint>>
        points{{"HD4000 @ max", {gpu::DeviceConfig::hd4000(), 0.0}},
               {"HD4000 @ 550MHz",
                {gpu::DeviceConfig::hd4000(), 550.0}},
               {"HD4600 @ max", {gpu::DeviceConfig::hd4600(), 0.0}}};

    using Backend = core::DetailedValidator::Backend;
    core::DetailedValidator serial_v(app, Backend::Serial);
    core::DetailedValidator parallel_v(app, Backend::Parallel);

    TextTable detail_table({"design point", "projected SPI",
                            "detailed SPI", "error"});
    t0 = std::chrono::steady_clock::now();
    std::vector<core::DetailedValidator::Report> serial_reps;
    for (const auto &[label, dp] : points)
        serial_reps.push_back(serial_v.validate(sel, dp));
    double detail_serial_s = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < points.size(); ++i) {
        core::DetailedValidator::Report r =
            parallel_v.validate(sel, points[i].second);
        GT_ASSERT(r.fullSpi == serial_reps[i].fullSpi &&
                      r.projectedSpi == serial_reps[i].projectedSpi &&
                      r.errorPct == serial_reps[i].errorPct &&
                      r.fullWalked == serial_reps[i].fullWalked &&
                      r.subsetWalked == serial_reps[i].subsetWalked,
                  "GT_DETAILED serial/parallel divergence at ",
                  points[i].first);
        auto sci = [](double v) {
            std::ostringstream os;
            os << std::scientific << std::setprecision(3) << v;
            return os.str();
        };
        detail_table.addRow({points[i].first, sci(r.projectedSpi),
                             sci(r.fullSpi),
                             pct(r.errorPct / 100.0, 2)});
    }
    double detail_parallel_s = secondsSince(t0);

    detail_table.print(std::cout,
                       "Detailed (cycle-level) validation of the "
                       "trial-1 selection");
    std::cout << "  serial " << fixed(detail_serial_s, 3)
              << " s, parallel " << fixed(detail_parallel_s, 3)
              << " s ("
              << fixed(detail_serial_s / detail_parallel_s, 2)
              << "x, bit-identical); "
              << serial_v.checkpointBuilds()
              << " functional pre-passes shared across "
              << points.size() << " design points\n";
    return 0;
}
