/**
 * @file
 * Reproduces Table II: the program interval space — min/avg/max
 * interval counts per application for the three division schemes
 * (synchronization-bounded, approximately-N-instruction, single
 * kernel).
 *
 * Paper values (for 308 B-instruction applications with 100 M
 * instruction chunks): sync 56/545/2115; ~100 M 55/916/3121; single
 * kernel 55/4749/18157. Our workloads are instruction-scaled, so
 * the chunk target is totalInstrs/1000 (see DESIGN.md); the shape
 * to check is the large -> medium -> small ordering and the per-app
 * counts' relative spread.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    struct Row
    {
        core::IntervalScheme scheme;
        const char *label;
        const char *size;
        RunningStat counts;
    };
    Row rows[3] = {
        {core::IntervalScheme::SyncBounded,
         "Synchronization calls", "large", {}},
        {core::IntervalScheme::ApproxInstructions,
         "~(total/1000) instructions", "medium", {}},
        {core::IntervalScheme::SingleKernel,
         "Single kernel boundaries", "small", {}},
    };

    TextTable detail({"application", "sync", "approx-n", "kernel"});
    for (const std::string &name : bench::paperOrder()) {
        const core::ProfiledApp &app = bench::profiledApp(name);
        std::vector<std::string> cells{name};
        for (Row &row : rows) {
            auto intervals =
                core::buildIntervals(app.db, row.scheme);
            row.counts.add((double)intervals.size());
            cells.push_back(std::to_string(intervals.size()));
        }
        detail.addRow(cells);
    }

    TextTable table({"interval bound", "relative size", "min",
                     "avg", "max"});
    for (Row &row : rows) {
        table.addRow({row.label, row.size,
                      fixed(row.counts.min(), 0),
                      fixed(row.counts.mean(), 0),
                      fixed(row.counts.max(), 0)});
    }

    table.print(std::cout,
                "Table II: the program interval space "
                "(intervals per program)");
    std::cout << "paper: sync 56/545/2115; ~100M 55/916/3121; "
                 "kernel 55/4749/18157\n\n";
    detail.print(std::cout, "Per-application interval counts");
    return 0;
}
