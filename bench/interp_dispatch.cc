/**
 * @file
 * Interpreter-backend dispatch benchmark: the reference opcode-switch
 * interpreter vs. the predecoded micro-op backend (superblock
 * chaining + operand-shape-specialized handlers), across the whole
 * kernel template library in both Full and Fast execution modes.
 *
 * Each case runs the same dispatch through an Executor pinned to one
 * backend; the paired timings yield per-template speedups and a
 * geometric-mean speedup per mode, written to BENCH_interp.json (and
 * summarized on stdout) so the README's perf numbers are
 * reproducible with:
 *
 *     build/bench/interp_dispatch
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "gpu/executor.hh"
#include "workloads/templates.hh"

using namespace gt;

namespace
{

/** Leading template parameter (trip count / size knob) per case. */
constexpr int64_t leadingParam = 8;

/** Work items per dispatch (64 hardware threads at SIMD16). */
constexpr uint64_t benchGlobalSize = 16 * 64;

void
runInterp(benchmark::State &state, const std::string &tmpl,
          gpu::Executor::Backend backend, gpu::Executor::Mode mode)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "bench_" + tmpl;
    src.templateName = tmpl;
    src.params = {leadingParam};
    isa::KernelBinary bin = jit.compile(src);

    gpu::DeviceMemory mem(32 << 20);
    gpu::Executor exec(gpu::DeviceConfig::hd4000(), mem);
    exec.setBackend(backend);

    gpu::Dispatch d;
    d.binary = &bin;
    d.globalSize = benchGlobalSize;
    d.simdWidth = 16;
    d.args.assign(bin.numArgs, (uint32_t)mem.allocate(4 << 20));

    uint64_t instrs = 0;
    for (auto _ : state) {
        gpu::ExecProfile p = exec.run(d, mode);
        instrs += p.dynInstrs;
        benchmark::DoNotOptimize(p.dynInstrs);
    }
    state.counters["interp_instrs_per_s"] = benchmark::Counter(
        (double)instrs, benchmark::Counter::kIsRate);
}

std::string
caseName(const std::string &tmpl, const char *mode, const char *backend)
{
    return "interp/" + tmpl + "/" + mode + "/" + backend;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    const std::vector<std::string> templates =
        workloads::builtinTemplates().templateNames();

    const std::pair<const char *, gpu::Executor::Mode> modes[] = {
        {"full", gpu::Executor::Mode::Full},
        {"fast", gpu::Executor::Mode::Fast},
    };
    const std::pair<const char *, gpu::Executor::Backend> backends[] = {
        {"switch", gpu::Executor::Backend::Switch},
        {"uops", gpu::Executor::Backend::Uops},
    };

    for (const std::string &tmpl : templates) {
        for (const auto &[mode_name, mode] : modes) {
            for (const auto &[backend_name, backend] : backends) {
                benchmark::RegisterBenchmark(
                    caseName(tmpl, mode_name, backend_name).c_str(),
                    [tmpl, backend, mode](benchmark::State &st) {
                        runInterp(st, tmpl, backend, mode);
                    })
                    ->MinTime(0.1)
                    ->Unit(benchmark::kMicrosecond);
            }
        }
    }

    bench::CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // Pair up the timings and derive per-template speedups plus the
    // per-mode geometric means the acceptance gate checks.
    bench::BenchReport report("BENCH_interp.json");
    std::map<std::string, bench::GeoMean> geomeans;
    for (const std::string &tmpl : templates) {
        for (const auto &[mode_name, mode] : modes) {
            auto sw = reporter.times.find(
                caseName(tmpl, mode_name, "switch"));
            auto up = reporter.times.find(
                caseName(tmpl, mode_name, "uops"));
            if (sw == reporter.times.end() ||
                up == reporter.times.end()) {
                continue;
            }
            double speedup = sw->second / up->second;
            geomeans[mode_name].add(speedup);
            report.addRow()
                .field("template", tmpl)
                .field("mode", mode_name)
                .field("switch_ns", sw->second)
                .field("uops_ns", up->second)
                .field("speedup", speedup);
        }
    }
    std::cout << "\n";
    for (const auto &[mode_name, geomean] : geomeans) {
        report.scalar("geomean_speedup_" + mode_name,
                      geomean.value());
        std::cout << "geomean speedup (" << mode_name
                  << " mode, uops vs switch): " << geomean.value()
                  << "x\n";
    }
    return report.finish();
}
