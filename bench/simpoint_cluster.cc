/**
 * @file
 * K-means backend benchmark: the Lloyd oracle vs. the
 * triangle-inequality-pruned backend, per workload and end to end.
 *
 * Per-workload cluster cases time the full BIC sweep
 * (clusterPoints: candidate k = 1..10, seeding + Lloyd iterations +
 * distortion) over the SingleKernel interval population — the
 * largest population a selection run feeds the clusterer. The
 * explore cases time the whole 30-configuration exploreConfigs
 * through a prebuilt feature engine, the selection loop's usage
 * model, where profiling shows the wall clock concentrates in
 * k-means on dispatch-heavy workloads.
 *
 * Paired timings yield per-case speedups, geometric means, and the
 * pruned backend's skip rates, written to BENCH_kmeans.json (and
 * summarized on stdout) so the README's perf numbers are
 * reproducible with:
 *
 *     build/bench/simpoint_cluster
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "core/explorer.hh"
#include "core/feature_engine.hh"
#include "core/pipeline.hh"
#include "workloads/workload.hh"

using namespace gt;
using namespace gt::core;

namespace
{

// The dispatch-heavy workloads of the suite (largest clustering
// populations — thousands of SingleKernel intervals): exactly the
// shape where exploreConfigs is k-means-bound.
const std::vector<std::string> benchApps = {
    "sonyvegas-proj-r4",
    "cb-physics-part-sim-32k",
    "cb-graphics-t-rex",
    "sandra-crypt-aes256",
};

struct BenchApp
{
    std::string name;
    ProfiledApp app;
    std::vector<simpoint::Point> points; //!< SingleKernel population
    std::vector<double> weights;
    double clusterPruneRate = 0.0; //!< pruned clusterPoints skip rate
    double explorePruneRate = 0.0; //!< pruned exploreConfigs skip rate
};

std::vector<BenchApp> &
apps()
{
    static std::vector<BenchApp> profiled = [] {
        setLogQuiet(true);
        std::vector<BenchApp> out;
        for (const std::string &name : benchApps) {
            const workloads::Workload *w =
                workloads::findWorkload(name);
            GT_ASSERT(w, "unknown workload ", name);
            BenchApp b;
            b.name = name;
            b.app = profileApp(*w);
            FeatureEngine engine(b.app.db, FeatureBackend::Flat);
            auto intervals = buildIntervals(
                b.app.db, IntervalScheme::SingleKernel);
            b.points = engine.projectAll(intervals, FeatureKind::BB);
            b.weights.reserve(intervals.size());
            for (const Interval &iv : intervals) {
                b.weights.push_back(
                    std::max<double>(1.0, (double)iv.instrs));
            }
            out.push_back(std::move(b));
        }
        return out;
    }();
    return profiled;
}

void
runCluster(benchmark::State &state, BenchApp &b,
           simpoint::KMeansBackend backend)
{
    // One thread: measure the algorithm, not the pool; results are
    // bit-identical at any width (see ClusterOptions::pool).
    sched::ThreadPool pool(1);
    simpoint::ClusterOptions options;
    options.pool = &pool;
    options.backend = backend;
    for (auto _ : state) {
        simpoint::Clustering c =
            simpoint::clusterPoints(b.points, b.weights, options);
        if (backend == simpoint::KMeansBackend::Pruned)
            b.clusterPruneRate = c.stats.pruneRate();
        benchmark::DoNotOptimize(c.assignment.data());
    }
    state.counters["points"] = (double)b.points.size();
}

void
runExplore(benchmark::State &state, BenchApp &b,
           simpoint::KMeansBackend backend)
{
    // Prebuilt engine (the usage model: one lowering per workload
    // shared by every consumer), so the timed region is the
    // selection loop itself — interval building, projection, and
    // above all the 30 BIC sweeps.
    FeatureEngine engine(b.app.db, FeatureBackend::Flat);
    sched::ThreadPool pool(1);
    simpoint::ClusterOptions options;
    options.pool = &pool;
    options.backend = backend;
    for (auto _ : state) {
        Exploration ex =
            exploreConfigs(b.app.db, options, 0, &engine);
        if (backend == simpoint::KMeansBackend::Pruned)
            b.explorePruneRate = ex.clusterStats().pruneRate();
        benchmark::DoNotOptimize(ex.results.data());
    }
}

std::string
caseName(const char *what, const std::string &app,
         simpoint::KMeansBackend backend)
{
    return std::string(what) + "/" + app + "/" +
           simpoint::kmeansBackendName(backend);
}

constexpr simpoint::KMeansBackend bothBackends[] = {
    simpoint::KMeansBackend::Lloyd,
    simpoint::KMeansBackend::Pruned,
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    for (BenchApp &b : apps()) {
        for (simpoint::KMeansBackend backend : bothBackends) {
            benchmark::RegisterBenchmark(
                caseName("cluster", b.name, backend).c_str(),
                [&b, backend](benchmark::State &st) {
                    runCluster(st, b, backend);
                })
                ->MinTime(0.1)
                ->Unit(benchmark::kMillisecond);
            benchmark::RegisterBenchmark(
                caseName("explore", b.name, backend).c_str(),
                [&b, backend](benchmark::State &st) {
                    runExplore(st, b, backend);
                })
                ->MinTime(0.1)
                ->Unit(benchmark::kMillisecond);
        }
    }

    bench::CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    bench::BenchReport report("BENCH_kmeans.json");
    std::cout << "\n";
    const char *sections[] = {"cluster", "explore"};
    for (const char *what : sections) {
        bool explore = what[0] == 'e';
        bench::GeoMean geomean;
        for (const BenchApp &b : apps()) {
            auto ll = reporter.times.find(caseName(
                what, b.name, simpoint::KMeansBackend::Lloyd));
            auto pr = reporter.times.find(caseName(
                what, b.name, simpoint::KMeansBackend::Pruned));
            if (ll == reporter.times.end() ||
                pr == reporter.times.end()) {
                continue;
            }
            double speedup = ll->second / pr->second;
            geomean.add(speedup);
            report.addRow(what)
                .field("app", b.name)
                .field("lloyd_ns", ll->second)
                .field("pruned_ns", pr->second)
                .field("speedup", speedup)
                .field("prune_rate", explore ? b.explorePruneRate
                                             : b.clusterPruneRate);
        }
        if (geomean.count() > 0) {
            report.scalar(std::string("geomean_speedup_") + what,
                          geomean.value());
            std::cout << "geomean speedup ("
                      << (explore ? "end-to-end exploreConfigs"
                                  : "clusterPoints BIC sweep")
                      << ", pruned vs lloyd): " << geomean.value()
                      << "x\n";
        }
    }
    return report.finish();
}
