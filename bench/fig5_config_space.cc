/**
 * @file
 * Reproduces Figure 5: the feature and division space exploration.
 *
 * For the paper's three sample applications (physics-ocean-surf,
 * crypt-aes128, press-proj-r3) prints performance error and
 * selection size for all 30 interval/feature configurations; then
 * reproduces the Section V-B summary: the best single universal
 * configuration across all 25 applications (the paper finds
 * sync-bounded intervals + BB features: 1.5% average error, 1.9%
 * average selection => 53x speedup; worst case 8.8% error / 24.0%
 * selection).
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    const std::vector<std::string> samples = {
        "cb-physics-ocean-surf", "sandra-crypt-aes128",
        "sonyvegas-proj-r3"};

    for (const std::string &name : samples) {
        const core::Exploration &ex = bench::exploration(name);
        TextTable table({"intervals", "features", "error",
                         "selection size", "speedup"});
        for (int s = 0; s < core::numIntervalSchemes; ++s) {
            for (int f = 0; f < core::numFeatureKinds; ++f) {
                const core::ConfigResult &r = ex.result(
                    (core::IntervalScheme)s, (core::FeatureKind)f);
                table.addRow(
                    {core::intervalSchemeName(
                         (core::IntervalScheme)s),
                     core::featureKindName((core::FeatureKind)f),
                     pct(r.errorPct / 100.0, 2),
                     pct(r.selection.selectionFraction(), 2),
                     fixed(r.selection.speedup(), 0) + "x"});
            }
            if (s + 1 < core::numIntervalSchemes)
                table.addSeparator();
        }
        table.print(std::cout, "Fig. 5: " + name);
        std::cout << "\n";
    }

    // Section V-B: best universal configuration across all 25 apps.
    std::cout << "Searching the best universal configuration over "
                 "all 25 applications...\n";
    double best_err = 1e9;
    core::IntervalScheme best_s = core::IntervalScheme::SyncBounded;
    core::FeatureKind best_f = core::FeatureKind::BB;
    TextTable avg_table({"intervals", "features", "avg error",
                         "avg selection", "worst error",
                         "worst selection"});
    for (int s = 0; s < core::numIntervalSchemes; ++s) {
        for (int f = 0; f < core::numFeatureKinds; ++f) {
            RunningStat err, size;
            for (const std::string &name : bench::paperOrder()) {
                const core::ConfigResult &r =
                    bench::exploration(name).result(
                        (core::IntervalScheme)s,
                        (core::FeatureKind)f);
                err.add(r.errorPct);
                size.add(r.selection.selectionFraction());
            }
            avg_table.addRow(
                {core::intervalSchemeName((core::IntervalScheme)s),
                 core::featureKindName((core::FeatureKind)f),
                 pct(err.mean() / 100.0, 2),
                 pct(size.mean(), 2), pct(err.max() / 100.0, 1),
                 pct(size.max(), 1)});
            if (err.mean() < best_err) {
                best_err = err.mean();
                best_s = (core::IntervalScheme)s;
                best_f = (core::FeatureKind)f;
            }
        }
    }
    avg_table.print(std::cout,
                    "Cross-application averages per configuration");

    RunningStat err, size;
    for (const std::string &name : bench::paperOrder()) {
        const core::ConfigResult &r =
            bench::exploration(name).result(best_s, best_f);
        err.add(r.errorPct);
        size.add(r.selection.selectionFraction());
    }
    std::cout << "\nBest universal configuration: "
              << core::intervalSchemeName(best_s) << " intervals + "
              << core::featureKindName(best_f) << " features\n"
              << "  average error " << pct(err.mean() / 100.0, 2)
              << ", average selection " << pct(size.mean(), 2)
              << " (=> " << fixed(1.0 / size.mean(), 0)
              << "x simulation speedup)\n"
              << "  worst error " << pct(err.max() / 100.0, 1)
              << ", largest selection " << pct(size.max(), 1)
              << "\n"
              << "paper: sync+BB, 1.5% avg error, 1.9% selection "
                 "(53x); worst 8.8% error, 24.0% selection\n";
    return 0;
}
