/**
 * @file
 * A GT-Pin cache-simulation study (the capability Section III-B
 * lists: "cache simulation through the use of memory traces"):
 * sweep the modeled LLC slice capacity and associativity and report
 * hit rates for a small mixed workload, the kind of what-if an
 * architect answers with trace-driven cache simulation before
 * touching a detailed simulator.
 *
 * Cache simulation needs per-access addresses, which forces full
 * per-lane execution, so this study uses a purpose-built miniature
 * workload rather than a full suite member.
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "gtpin/cache_sim.hh"
#include "isa/builder.hh"
#include "ocl/runtime.hh"
#include "workloads/workload.hh"

using namespace gt;

namespace
{

/**
 * A purpose-built kernel registered through the template registry's
 * user extension point: strided touches over a large footprint, so
 * capacity and conflict behaviour are visible.
 * params: [trips, mask, stride]   args: [buf]
 */
isa::KernelBinary
stridedTouch(const std::string &name,
             const std::vector<int64_t> &params)
{
    int64_t trips = params.at(0);
    auto mask = (uint32_t)params.at(1);
    auto stride = (uint32_t)params.at(2);

    isa::KernelBuilder b(name, 1);
    isa::Reg c = b.reg(), idx = b.reg(), addr = b.reg();
    isa::Reg v = b.reg();
    b.mul(idx, b.globalIds(), isa::imm(stride), 16);
    b.beginLoop(c, isa::imm((uint32_t)trips));
    {
        b.add(idx, idx, isa::imm(8191), 16);
        b.and_(addr, idx, isa::imm(mask), 16);
        b.shl(addr, addr, isa::imm(2), 16);
        b.add(addr, addr, b.arg(0), 16);
        b.load(v, addr, 4, 16);
        b.store(v, addr, 4, 16);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/** Repeated strided sweeps over a 1 MiB working set. */
void
runMiniWorkload(ocl::ClRuntime &rt)
{
    constexpr uint32_t mask = 0x3ffff; // 256K elements = 1 MiB
    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    ocl::Program prog = rt.createProgramWithSource(
        ctx, {{"touch", "strided_touch", {24, mask, 2053}}});
    rt.buildProgram(prog);
    ocl::Kernel touch = rt.createKernel(prog, "touch");
    ocl::Mem buf = rt.createBuffer(ctx, (uint64_t)(mask + 1) * 4 + 64);
    rt.enqueueFillBuffer(q, buf, 0x01020304u, 0,
                         (uint64_t)(mask + 1) * 4);
    rt.setKernelArg(touch, 0, buf);
    for (int pass = 0; pass < 4; ++pass) {
        rt.enqueueNDRangeKernel(q, touch, 4096, 16);
        rt.finish(q);
    }
}

/** Registry with the built-ins plus the study's custom template. */
const workloads::KernelTemplateRegistry &
studyRegistry()
{
    static const workloads::KernelTemplateRegistry registry = [] {
        workloads::KernelTemplateRegistry r;
        r.add("strided_touch", stridedTouch);
        return r;
    }();
    return registry;
}

} // anonymous namespace

int
main()
{
    setLogQuiet(true);

    TextTable cap_table({"LLC slice", "accesses", "hit rate",
                         "writebacks"});
    for (uint64_t kib : {64, 256, 1024, 4096}) {
        workloads::TemplateJit jit(studyRegistry());
        ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
        gtpin::CacheSimTool tool(kib * 1024, 16, 64);
        gtpin::GtPin pin;
        pin.addTool(&tool);
        pin.attach(driver);
        ocl::ClRuntime rt(driver);
        runMiniWorkload(rt);
        pin.detach();
        cap_table.addRow(
            {std::to_string(kib) + " KiB",
             humanCount((double)tool.cache().accesses()),
             pct(tool.cache().hitRate()),
             humanCount((double)tool.cache().writebacks())});
    }
    cap_table.print(std::cout,
                    "Cache study: LLC capacity sweep (16-way, 64B "
                    "lines)");
    std::cout << "\n";

    TextTable way_table({"associativity", "hit rate"});
    for (uint32_t ways : {1, 2, 4, 16}) {
        workloads::TemplateJit jit(studyRegistry());
        ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
        gtpin::CacheSimTool tool(256 * 1024, ways, 64);
        gtpin::GtPin pin;
        pin.addTool(&tool);
        pin.attach(driver);
        ocl::ClRuntime rt(driver);
        runMiniWorkload(rt);
        pin.detach();
        way_table.addRow({std::to_string(ways) + "-way",
                          pct(tool.cache().hitRate())});
    }
    way_table.print(std::cout,
                    "Cache study: associativity sweep (256 KiB)");
    return 0;
}
