/**
 * @file
 * Ablations of the selection methodology's design choices — the
 * knobs the paper fixes without sweeping:
 *
 *  1. the maximum cluster count (the paper uses 10 everywhere):
 *     error/speedup as maxK varies;
 *  2. SimPoint's BIC acceptance threshold (0.9 in our
 *     implementation);
 *  3. the ApproxInstructions chunk size (the paper's "~100M
 *     instructions"; ours scales as totalInstrs/N).
 *
 * Each sweep reports cross-application averages over a sample of the
 * suite under the sync+BB / approx+BB configurations.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gt;

namespace
{

const std::vector<std::string> sampleApps = {
    "cb-graphics-t-rex",     "cb-physics-ocean-surf",
    "cb-throughput-bitcoin", "cb-histogram-buffer",
    "sandra-crypt-aes128",   "sandra-proc-gpu",
    "sonyvegas-proj-r3",     "sonyvegas-proj-r5",
};

void
sweepRow(TextTable &table, const std::string &label,
         core::IntervalScheme scheme,
         const core::simpoint::ClusterOptions &options,
         uint64_t target_instrs)
{
    RunningStat err, fraction;
    for (const std::string &name : sampleApps) {
        const core::ProfiledApp &app = bench::profiledApp(name);
        core::SubsetSelection sel = core::selectSubset(
            app.db, scheme, core::FeatureKind::BB, options,
            target_instrs);
        err.add(core::selectionErrorPct(app.db, sel));
        fraction.add(sel.selectionFraction());
    }
    table.addRow({label, pct(err.mean() / 100.0, 2),
                  pct(err.max() / 100.0, 2),
                  pct(fraction.mean(), 2),
                  fixed(1.0 / fraction.mean(), 0) + "x"});
}

} // anonymous namespace

int
main()
{
    setLogQuiet(true);

    // 1. Cluster budget.
    TextTable k_table({"max clusters", "avg error", "worst error",
                       "avg selection", "speedup"});
    for (int max_k : {1, 2, 5, 10, 20}) {
        core::simpoint::ClusterOptions opts;
        opts.maxK = max_k;
        sweepRow(k_table, std::to_string(max_k),
                 core::IntervalScheme::SyncBounded, opts, 0);
    }
    k_table.print(std::cout,
                  "Ablation 1: maximum cluster count (paper fixes "
                  "10; sync+BB)");
    std::cout << "\n";

    // 2. BIC acceptance threshold.
    TextTable bic_table({"BIC threshold", "avg error",
                         "worst error", "avg selection", "speedup"});
    for (double threshold : {0.5, 0.7, 0.9, 1.0}) {
        core::simpoint::ClusterOptions opts;
        opts.bicThreshold = threshold;
        sweepRow(bic_table, fixed(threshold, 1),
                 core::IntervalScheme::SyncBounded, opts, 0);
    }
    bic_table.print(std::cout,
                    "Ablation 2: BIC acceptance threshold "
                    "(sync+BB)");
    std::cout << "\n";

    // 3. ApproxInstructions chunk size, as a fraction of the
    // program (the paper's 100M is ~total/3000 for its workloads).
    TextTable chunk_table({"chunk = total/N", "avg error",
                           "worst error", "avg selection",
                           "speedup"});
    for (uint64_t divisor : {250, 500, 1000, 2000, 4000}) {
        RunningStat err, fraction;
        for (const std::string &name : sampleApps) {
            const core::ProfiledApp &app = bench::profiledApp(name);
            uint64_t target = std::max<uint64_t>(
                1, app.db.totalInstrs() / divisor);
            core::SubsetSelection sel = core::selectSubset(
                app.db, core::IntervalScheme::ApproxInstructions,
                core::FeatureKind::BB, {}, target);
            err.add(core::selectionErrorPct(app.db, sel));
            fraction.add(sel.selectionFraction());
        }
        chunk_table.addRow({"total/" + std::to_string(divisor),
                            pct(err.mean() / 100.0, 2),
                            pct(err.max() / 100.0, 2),
                            pct(fraction.mean(), 2),
                            fixed(1.0 / fraction.mean(), 0) + "x"});
    }
    chunk_table.print(std::cout,
                      "Ablation 3: interval chunk size (approx+BB)");
    std::cout << "\nReading: smaller chunks and bigger cluster "
                 "budgets buy accuracy with\nlarger selections; the "
                 "paper's 10-cluster budget sits at the knee.\n";
    return 0;
}
