/**
 * @file
 * Reproduces Section III-C's overhead discussion as google-benchmark
 * microbenchmarks:
 *
 *  - modeled device-time overhead of GT-Pin profiling vs. native
 *    execution (the paper reports 2-10x, vs. up to 2,000,000x for
 *    simulation);
 *  - host-side cost of the profiling pipeline itself (wall time per
 *    profiled dispatch);
 *  - throughput of the core machinery: the functional executor's
 *    fast mode, the binary rewriter, the k-means clusterer, and the
 *    detailed simulator (whose slowness is the paper's motivation);
 *  - wall-clock scaling of the gt::sched parallel entry points
 *    (profileSuite, exploreConfigs) against their 1-thread serial
 *    fallback, so the BENCH record captures the serial-vs-parallel
 *    trajectory. These use real time (not CPU time): a parallel run
 *    burns the same CPU seconds across more cores.
 */

#include <benchmark/benchmark.h>

#include "common/logging.hh"

#include "cfl/tracer.hh"
#include "core/pipeline.hh"
#include "sched/thread_pool.hh"
#include "gpu/detailed_sim.hh"
#include "gtpin/tools.hh"
#include "workloads/templates.hh"

using namespace gt;

namespace
{

/** Modeled device seconds for one run of a mid-size app. */
double
deviceSeconds(bool with_gtpin)
{
    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);

    gtpin::BasicBlockCounterTool bb;
    gtpin::OpcodeMixTool mix;
    gtpin::MemBytesTool mem;
    gtpin::KernelTimerTool timer;
    gtpin::GtPin pin;
    pin.addTool(&bb);
    pin.addTool(&mix);
    pin.addTool(&mem);
    pin.addTool(&timer);
    if (with_gtpin)
        pin.attach(driver);

    ocl::ClRuntime rt(driver);
    workloads::findWorkload("cb-gaussian-image")->run(rt);
    double seconds = driver.deviceBusySeconds();
    if (with_gtpin)
        pin.detach();
    return seconds;
}

void
BM_GtPinDeviceOverhead(benchmark::State &state)
{
    setLogQuiet(true);
    double native = 0.0, pinned = 0.0;
    for (auto _ : state) {
        native = deviceSeconds(false);
        pinned = deviceSeconds(true);
        benchmark::DoNotOptimize(pinned);
    }
    state.counters["overhead_x"] = pinned / native;
    state.counters["paper_range_lo"] = 2.0;
    state.counters["paper_range_hi"] = 10.0;
}
BENCHMARK(BM_GtPinDeviceOverhead)->Unit(benchmark::kMillisecond);

void
BM_ProfilingHostCost(benchmark::State &state)
{
    setLogQuiet(true);
    const workloads::Workload *w =
        workloads::findWorkload("cb-gaussian-image");
    uint64_t dispatches = 0;
    for (auto _ : state) {
        core::ProfiledApp app = core::profileApp(*w);
        dispatches = app.db.numDispatches();
        benchmark::DoNotOptimize(app.db.totalInstrs());
    }
    state.counters["dispatches"] = (double)dispatches;
    state.counters["dispatch_rate"] = benchmark::Counter(
        (double)(dispatches * state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfilingHostCost)->Unit(benchmark::kMillisecond);

void
BM_FastExecutorThroughput(benchmark::State &state)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    gpu::DeviceConfig cfg = gpu::DeviceConfig::hd4000();
    gpu::DeviceMemory mem(32 << 20);
    gpu::Executor exec(cfg, mem);
    isa::KernelSource src;
    src.name = "bench";
    src.templateName = "julia";
    src.params = {state.range(0), 16};
    isa::KernelBinary bin = jit.compile(src);
    gpu::Dispatch d;
    d.binary = &bin;
    d.globalSize = 1 << 20;
    d.simdWidth = 16;
    d.args = {(uint32_t)mem.allocate(1 << 20), 0x3f000000u,
              0x3e000000u};

    uint64_t instrs = 0;
    for (auto _ : state) {
        gpu::ExecProfile p = exec.run(d, gpu::Executor::Mode::Fast);
        instrs += p.dynInstrs;
        benchmark::DoNotOptimize(p.dynInstrs);
    }
    state.counters["profiled_instrs_per_s"] = benchmark::Counter(
        (double)instrs, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastExecutorThroughput)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void
BM_DetailedSimulator(benchmark::State &state)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    gpu::DeviceConfig cfg = gpu::DeviceConfig::hd4000();
    gpu::DeviceMemory mem(32 << 20);
    gpu::Executor exec(cfg, mem);
    gpu::DetailedSimulator sim(cfg);
    isa::KernelSource src;
    src.name = "bench";
    src.templateName = "julia";
    src.params = {64, 16};
    isa::KernelBinary bin = jit.compile(src);
    gpu::Dispatch d;
    d.binary = &bin;
    d.globalSize = 1 << 14;
    d.simdWidth = 16;
    d.args = {(uint32_t)mem.allocate(1 << 20), 0x3f000000u,
              0x3e000000u};

    uint64_t walked = 0;
    for (auto _ : state) {
        gpu::DetailedResult r = sim.simulate(exec, d);
        walked += r.simulatedInstrs;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["simulated_instrs_per_s"] = benchmark::Counter(
        (double)walked, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetailedSimulator)->Unit(benchmark::kMillisecond);

void
BM_BinaryRewriter(benchmark::State &state)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    isa::KernelSource src;
    src.name = "bench";
    src.templateName = "deep";
    src.params = {state.range(0)};
    isa::KernelBinary bin = jit.compile(src);

    for (auto _ : state) {
        gtpin::SlotAllocator slots;
        gtpin::Instrumenter instr(bin, slots);
        for (const auto &block : bin.blocks)
            instr.countBlockEntry(block.id, instr.allocSlot());
        isa::KernelBinary out = instr.apply();
        benchmark::DoNotOptimize(out.staticInstrCount());
    }
    state.counters["blocks"] = (double)bin.blocks.size();
}
BENCHMARK(BM_BinaryRewriter)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void
BM_SimPointClustering(benchmark::State &state)
{
    setLogQuiet(true);
    Rng rng(42);
    std::vector<core::FeatureVector> vectors;
    std::vector<double> weights;
    for (int64_t i = 0; i < state.range(0); ++i) {
        core::FeatureVector v;
        for (int k = 0; k < 12; ++k) {
            v.add((uint64_t)((i % 7) * 100 + k),
                  1.0 + rng.nextDouble());
        }
        v.normalize();
        vectors.push_back(std::move(v));
        weights.push_back(1.0 + rng.nextDouble(0.0, 10.0));
    }
    for (auto _ : state) {
        core::simpoint::Clustering c =
            core::simpoint::cluster(vectors, weights);
        benchmark::DoNotOptimize(c.k);
    }
    state.counters["intervals"] = (double)state.range(0);
}
BENCHMARK(BM_SimPointClustering)
    ->Arg(500)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

/** A mid-size slice of the suite for the scaling benchmarks. */
const std::vector<const workloads::Workload *> &
suiteSlice()
{
    static const std::vector<const workloads::Workload *> apps = [] {
        const std::vector<std::string> names{
            "cb-gaussian-image",  "cb-gaussian-buffer",
            "cb-histogram-image", "cb-throughput-juliaset",
            "cb-vision-facedetect-mobile", "sandra-crypt-aes128",
        };
        std::vector<const workloads::Workload *> out;
        for (const std::string &n : names) {
            if (const workloads::Workload *w =
                    workloads::findWorkload(n)) {
                out.push_back(w);
            }
        }
        return out;
    }();
    return apps;
}

void
BM_ProfileSuite(benchmark::State &state)
{
    setLogQuiet(true);
    sched::ThreadPool pool((unsigned)state.range(0));
    uint64_t instrs = 0;
    for (auto _ : state) {
        std::vector<core::ProfiledApp> apps = core::profileSuite(
            suiteSlice(), gpu::DeviceConfig::hd4000(), {}, &pool);
        instrs = 0;
        for (const core::ProfiledApp &a : apps)
            instrs += a.db.totalInstrs();
        benchmark::DoNotOptimize(instrs);
    }
    state.counters["threads"] = (double)pool.threadCount();
    state.counters["apps"] = (double)suiteSlice().size();
}
BENCHMARK(BM_ProfileSuite)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_ExploreConfigs(benchmark::State &state)
{
    setLogQuiet(true);
    static const core::ProfiledApp app = core::profileApp(
        *workloads::findWorkload("cb-gaussian-buffer"));
    sched::ThreadPool pool((unsigned)state.range(0));
    core::simpoint::ClusterOptions options;
    options.pool = &pool;
    for (auto _ : state) {
        core::Exploration ex = core::exploreConfigs(app.db, options);
        benchmark::DoNotOptimize(ex.results.size());
    }
    state.counters["threads"] = (double)pool.threadCount();
}
BENCHMARK(BM_ExploreConfigs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
