/**
 * @file
 * Reproduces Figure 4: GPU work characterization.
 *
 *  (a) dynamic instruction mixes over the five GEN classes (moves,
 *      logic, control, computation, sends);
 *  (b) SIMD width distributions;
 *  (c) cumulative bytes read and written across hardware threads.
 *
 * Paper reference points: control averages 7.3%, computation 36.2%,
 * sends 5.1%; proc-gpu is 91% computation. SIMD-16 and SIMD-8 carry
 * 52% and 45% of instructions, SIMD-1 ~4%, SIMD-4 <0.1%, SIMD-2
 * never. The crypto apps read the most (624/2174 GB); the Sony
 * regions write up to 525x what they read; averages are 1110 GB
 * read, 105 GB written.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    TextTable a({"application", "moves", "logic", "control",
                 "computation", "sends"});
    TextTable b({"application", "simd16", "simd8", "simd4", "simd2",
                 "simd1"});
    TextTable c({"application", "bytes read", "bytes written",
                 "W/R"});

    RunningStat cls_stat[isa::numOpClasses];
    RunningStat simd_stat[5];
    RunningStat read_stat, write_stat;

    for (const std::string &name : bench::paperOrder()) {
        const core::AppCharacterization &st =
            bench::profiledApp(name).stats;

        double total = (double)st.dynInstrs;
        auto cls = [&](isa::OpClass c) {
            return (double)st.classCounts[(int)c] / total;
        };
        a.addRow({name, pct(cls(isa::OpClass::Move)),
                  pct(cls(isa::OpClass::Logic)),
                  pct(cls(isa::OpClass::Control)),
                  pct(cls(isa::OpClass::Computation)),
                  pct(cls(isa::OpClass::Send))});
        for (int k = 0; k < isa::numOpClasses; ++k) {
            cls_stat[k].add((double)st.classCounts[k] / total);
        }

        auto simd = [&](int bin) {
            return (double)st.simdCounts[bin] / total;
        };
        b.addRow({name, pct(simd(4)), pct(simd(3)), pct(simd(2), 2),
                  pct(simd(1), 2), pct(simd(0))});
        for (int k = 0; k < 5; ++k)
            simd_stat[k].add(simd(k));

        double ratio = st.bytesRead
            ? (double)st.bytesWritten / (double)st.bytesRead
            : 0.0;
        c.addRow({name, humanBytes((double)st.bytesRead),
                  humanBytes((double)st.bytesWritten),
                  fixed(ratio, 2) + "x"});
        read_stat.add((double)st.bytesRead);
        write_stat.add((double)st.bytesWritten);
    }

    a.addSeparator();
    a.addRow({"AVERAGE",
              pct(cls_stat[(int)isa::OpClass::Move].mean()),
              pct(cls_stat[(int)isa::OpClass::Logic].mean()),
              pct(cls_stat[(int)isa::OpClass::Control].mean()),
              pct(cls_stat[(int)isa::OpClass::Computation].mean()),
              pct(cls_stat[(int)isa::OpClass::Send].mean())});
    b.addSeparator();
    b.addRow({"AVERAGE", pct(simd_stat[4].mean()),
              pct(simd_stat[3].mean()), pct(simd_stat[2].mean(), 2),
              pct(simd_stat[1].mean(), 2),
              pct(simd_stat[0].mean())});
    c.addSeparator();
    c.addRow({"AVERAGE", humanBytes(read_stat.mean()),
              humanBytes(write_stat.mean()), ""});

    a.print(std::cout, "Fig. 4a: dynamic instruction mixes");
    std::cout << "paper averages: control 7.3%, computation 36.2%, "
                 "sends 5.1%; proc-gpu 91% computation\n\n";
    b.print(std::cout, "Fig. 4b: SIMD widths");
    std::cout << "paper: 16-wide 52%, 8-wide 45%, 1-wide ~4%, "
                 "4-wide <0.1%, 2-wide never\n\n";
    c.print(std::cout, "Fig. 4c: GPU memory activity");
    std::cout << "paper: crypto reads most (624/2174 GB); Sony "
                 "writes up to 525x reads;\n"
                 "averages 1110 GB read / 105 GB written\n";
    return 0;
}
