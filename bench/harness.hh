/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: cached
 * application profiling (one native run per app per process) and the
 * paper's presentation order.
 */

#ifndef GT_BENCH_HARNESS_HH
#define GT_BENCH_HARNESS_HH

#include <string>
#include <vector>

#include "core/pipeline.hh"

namespace gt::bench
{

/** The 25 application names in the paper's figure order. */
const std::vector<std::string> &paperOrder();

/** Profile (once per process) and return the cached result. */
const core::ProfiledApp &profiledApp(const std::string &name);

/** Run the 30-config exploration (cached per process). */
const core::Exploration &exploration(const std::string &name);

} // namespace gt::bench

#endif // GT_BENCH_HARNESS_HH
