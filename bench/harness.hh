/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: cached
 * application profiling (one native run per app per process), the
 * paper's presentation order, and the BENCH_*.json report machinery
 * every perf bench used to hand-roll (smoke-flag stripping, geomean
 * accumulation, the google-benchmark timing capture, and the JSON
 * writer with enforced pass/fail gates).
 *
 * The caches are mutex-guarded so scheduler tasks may call the
 * accessors concurrently; prefetchProfiles()/prefetchExplorations()
 * warm them through the parallel entry points (profileSuite and the
 * pooled 30-config explorer) so a bench's first figure does not pay
 * the whole suite's profiling cost serially.
 */

#ifndef GT_BENCH_HARNESS_HH
#define GT_BENCH_HARNESS_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hh"

namespace gt::bench
{

/** The 25 application names in the paper's figure order. */
const std::vector<std::string> &paperOrder();

/** Profile (once per process) and return the cached result. */
const core::ProfiledApp &profiledApp(const std::string &name);

/** Run the 30-config exploration (cached per process). */
const core::Exploration &exploration(const std::string &name);

/** Profile the whole suite concurrently into the cache. */
void prefetchProfiles();

/** Explore every profiled app's 30 configurations concurrently. */
void prefetchExplorations();

/**
 * Strip a leading-anywhere `--smoke` from @p argv before
 * google-benchmark (or the bench's own parser) sees it. @return
 * whether the flag was present — the CI variant: shorter timings and
 * relaxed perf gates, with every correctness assert kept.
 */
bool stripSmokeFlag(int &argc, char **argv);

/** Running geometric mean over speedup/ratio samples. */
class GeoMean
{
  public:
    void
    add(double ratio)
    {
        logSum += std::log(ratio);
        ++n;
    }

    int count() const { return n; }

    /** The geometric mean, or 0.0 before any sample. */
    double value() const { return n ? std::exp(logSum / n) : 0.0; }

  private:
    double logSum = 0.0;
    int n = 0;
};

/** Captures adjusted per-iteration real time for every finished run
 * on top of the normal console output (the `/min_time` suffix
 * google-benchmark appends is stripped, so lookups use the
 * registered name). */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            std::string name = run.benchmark_name();
            if (size_t pos = name.find("/min_time");
                pos != std::string::npos) {
                name.resize(pos);
            }
            times[name] = run.GetAdjustedRealTime();
        }
        ConsoleReporter::ReportRuns(runs);
    }

    std::map<std::string, double> times;
};

/**
 * Assembles one BENCH_*.json file: an optional "benchmarks" array of
 * per-case rows, top-level scalar fields, and named pass/fail gates.
 * A failed gate prints its message to stderr and makes finish()
 * return nonzero, so a bench's acceptance bound is enforced by its
 * own exit code (CI runs the binary, not a separate checker).
 */
class BenchReport
{
  public:
    /** @param file_name e.g. "BENCH_gang.json" (cwd-relative). */
    explicit BenchReport(std::string file_name);

    /** One object in the "benchmarks" array. */
    class Row
    {
      public:
        Row &field(const std::string &name, const std::string &value);
        Row &field(const std::string &name, const char *value);
        Row &field(const std::string &name, double value);
        Row &field(const std::string &name, uint64_t value);
        Row &field(const std::string &name, int value);
        Row &field(const std::string &name, bool value);

      private:
        friend class BenchReport;
        void key(const std::string &name);
        std::string body;
    };

    /** Append a row to @p array (arrays appear in first-use order;
     * most benches use the default single "benchmarks" array). The
     * reference stays valid for chained field() calls (rows live in
     * deques). */
    Row &addRow(const std::string &array = "benchmarks");

    void scalar(const std::string &name, double value);
    void scalar(const std::string &name, uint64_t value);
    void scalar(const std::string &name, int value);

    /**
     * Record one acceptance gate: emits `"name": "pass"|"fail"` and,
     * on failure, prints `FAIL: <fail_message>` to stderr and makes
     * finish() return 1. Callers relax smoke-mode gates by passing
     * `pass || smoke`.
     */
    void gate(const std::string &name, bool pass,
              const std::string &fail_message);

    /** Write the file, announce it on stdout, and @return the exit
     * code (0 iff every gate passed). */
    int finish();

  private:
    std::string file;
    std::vector<std::pair<std::string, std::deque<Row>>> arrays;
    std::vector<std::pair<std::string, std::string>> scalars;
    int rc = 0;
};

} // namespace gt::bench

#endif // GT_BENCH_HARNESS_HH
