/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: cached
 * application profiling (one native run per app per process) and the
 * paper's presentation order.
 *
 * The caches are mutex-guarded so scheduler tasks may call the
 * accessors concurrently; prefetchProfiles()/prefetchExplorations()
 * warm them through the parallel entry points (profileSuite and the
 * pooled 30-config explorer) so a bench's first figure does not pay
 * the whole suite's profiling cost serially.
 */

#ifndef GT_BENCH_HARNESS_HH
#define GT_BENCH_HARNESS_HH

#include <string>
#include <vector>

#include "core/pipeline.hh"

namespace gt::bench
{

/** The 25 application names in the paper's figure order. */
const std::vector<std::string> &paperOrder();

/** Profile (once per process) and return the cached result. */
const core::ProfiledApp &profiledApp(const std::string &name);

/** Run the 30-config exploration (cached per process). */
const core::Exploration &exploration(const std::string &name);

/** Profile the whole suite concurrently into the cache. */
void prefetchProfiles();

/** Explore every profiled app's 30 configurations concurrently. */
void prefetchExplorations();

} // namespace gt::bench

#endif // GT_BENCH_HARNESS_HH
