#include "bench/harness.hh"

#include <map>

#include "common/logging.hh"

namespace gt::bench
{

const std::vector<std::string> &
paperOrder()
{
    static const std::vector<std::string> order = [] {
        std::vector<std::string> names;
        for (const workloads::Workload *w :
             workloads::workloadSuite()) {
            names.push_back(w->info().name);
        }
        return names;
    }();
    return order;
}

const core::ProfiledApp &
profiledApp(const std::string &name)
{
    static std::map<std::string, core::ProfiledApp> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const workloads::Workload *w =
            workloads::findWorkload(name);
        GT_ASSERT(w, "unknown workload ", name);
        it = cache.emplace(name, core::profileApp(*w)).first;
    }
    return it->second;
}

const core::Exploration &
exploration(const std::string &name)
{
    static std::map<std::string, core::Exploration> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const core::ProfiledApp &app = profiledApp(name);
        it = cache.emplace(name, core::exploreConfigs(app.db))
                 .first;
    }
    return it->second;
}

} // namespace gt::bench
