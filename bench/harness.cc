#include "bench/harness.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"

namespace gt::bench
{

namespace
{

std::mutex cacheMutex;
std::map<std::string, core::ProfiledApp> profileCache;
std::map<std::string, core::Exploration> explorationCache;

} // anonymous namespace

const std::vector<std::string> &
paperOrder()
{
    static const std::vector<std::string> order = [] {
        std::vector<std::string> names;
        for (const workloads::Workload *w :
             workloads::workloadSuite()) {
            names.push_back(w->info().name);
        }
        return names;
    }();
    return order;
}

const core::ProfiledApp &
profiledApp(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = profileCache.find(name);
        if (it != profileCache.end())
            return it->second;
    }
    // Profile outside the lock: profileApp is self-contained, and
    // holding the mutex across it would serialize concurrent
    // callers. A racing duplicate profile is discarded by emplace.
    const workloads::Workload *w = workloads::findWorkload(name);
    GT_ASSERT(w, "unknown workload ", name);
    core::ProfiledApp app = core::profileApp(*w);
    std::lock_guard<std::mutex> lock(cacheMutex);
    return profileCache.emplace(name, std::move(app)).first->second;
}

const core::Exploration &
exploration(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = explorationCache.find(name);
        if (it != explorationCache.end())
            return it->second;
    }
    const core::ProfiledApp &app = profiledApp(name);
    core::Exploration ex = core::exploreConfigs(app.db);
    std::lock_guard<std::mutex> lock(cacheMutex);
    return explorationCache.emplace(name, std::move(ex))
        .first->second;
}

void
prefetchProfiles()
{
    std::vector<const workloads::Workload *> missing;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        for (const std::string &name : paperOrder()) {
            if (!profileCache.count(name))
                missing.push_back(workloads::findWorkload(name));
        }
    }
    if (missing.empty())
        return;
    std::vector<core::ProfiledApp> profiled =
        core::profileSuite(missing);
    std::lock_guard<std::mutex> lock(cacheMutex);
    for (core::ProfiledApp &app : profiled) {
        std::string name = app.name;
        profileCache.emplace(std::move(name), std::move(app));
    }
}

void
prefetchExplorations()
{
    prefetchProfiles();
    // exploreConfigs already fans its 30 configurations out on the
    // global pool; iterating apps serially here still keeps the pool
    // saturated while preserving the cache-fill order.
    for (const std::string &name : paperOrder())
        exploration(name);
}

} // namespace gt::bench
