#include "bench/harness.hh"

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/logging.hh"

namespace gt::bench
{

namespace
{

std::mutex cacheMutex;
std::map<std::string, core::ProfiledApp> profileCache;
std::map<std::string, core::Exploration> explorationCache;

} // anonymous namespace

const std::vector<std::string> &
paperOrder()
{
    static const std::vector<std::string> order = [] {
        std::vector<std::string> names;
        for (const workloads::Workload *w :
             workloads::workloadSuite()) {
            names.push_back(w->info().name);
        }
        return names;
    }();
    return order;
}

const core::ProfiledApp &
profiledApp(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = profileCache.find(name);
        if (it != profileCache.end())
            return it->second;
    }
    // Profile outside the lock: profileApp is self-contained, and
    // holding the mutex across it would serialize concurrent
    // callers. A racing duplicate profile is discarded by emplace.
    const workloads::Workload *w = workloads::findWorkload(name);
    GT_ASSERT(w, "unknown workload ", name);
    core::ProfiledApp app = core::profileApp(*w);
    std::lock_guard<std::mutex> lock(cacheMutex);
    return profileCache.emplace(name, std::move(app)).first->second;
}

const core::Exploration &
exploration(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = explorationCache.find(name);
        if (it != explorationCache.end())
            return it->second;
    }
    const core::ProfiledApp &app = profiledApp(name);
    core::Exploration ex = core::exploreConfigs(app.db);
    std::lock_guard<std::mutex> lock(cacheMutex);
    return explorationCache.emplace(name, std::move(ex))
        .first->second;
}

void
prefetchProfiles()
{
    std::vector<const workloads::Workload *> missing;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        for (const std::string &name : paperOrder()) {
            if (!profileCache.count(name))
                missing.push_back(workloads::findWorkload(name));
        }
    }
    if (missing.empty())
        return;
    std::vector<core::ProfiledApp> profiled =
        core::profileSuite(missing);
    std::lock_guard<std::mutex> lock(cacheMutex);
    for (core::ProfiledApp &app : profiled) {
        std::string name = app.name;
        profileCache.emplace(std::move(name), std::move(app));
    }
}

void
prefetchExplorations()
{
    prefetchProfiles();
    // exploreConfigs already fans its 30 configurations out on the
    // global pool; iterating apps serially here still keeps the pool
    // saturated while preserving the cache-fill order.
    for (const std::string &name : paperOrder())
        exploration(name);
}

bool
stripSmokeFlag(int &argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            return true;
        }
    }
    return false;
}

namespace
{

/** Default-ostream number rendering (6 significant digits), shared
 * by rows and scalars so migrated BENCH files keep their format. */
template <typename T>
std::string
render(T value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

} // anonymous namespace

BenchReport::BenchReport(std::string file_name)
    : file(std::move(file_name))
{
}

void
BenchReport::Row::key(const std::string &name)
{
    if (!body.empty())
        body += ", ";
    body += "\"" + name + "\": ";
}

BenchReport::Row &
BenchReport::Row::field(const std::string &name,
                        const std::string &value)
{
    key(name);
    body += "\"" + value + "\"";
    return *this;
}

BenchReport::Row &
BenchReport::Row::field(const std::string &name, const char *value)
{
    return field(name, std::string(value));
}

BenchReport::Row &
BenchReport::Row::field(const std::string &name, double value)
{
    key(name);
    body += render(value);
    return *this;
}

BenchReport::Row &
BenchReport::Row::field(const std::string &name, uint64_t value)
{
    key(name);
    body += render(value);
    return *this;
}

BenchReport::Row &
BenchReport::Row::field(const std::string &name, int value)
{
    key(name);
    body += render(value);
    return *this;
}

BenchReport::Row &
BenchReport::Row::field(const std::string &name, bool value)
{
    key(name);
    body += value ? "true" : "false";
    return *this;
}

BenchReport::Row &
BenchReport::addRow(const std::string &array)
{
    for (auto &[name, rows] : arrays) {
        if (name == array) {
            rows.emplace_back();
            return rows.back();
        }
    }
    arrays.emplace_back(array, std::deque<Row>());
    arrays.back().second.emplace_back();
    return arrays.back().second.back();
}

void
BenchReport::scalar(const std::string &name, double value)
{
    scalars.emplace_back(name, render(value));
}

void
BenchReport::scalar(const std::string &name, uint64_t value)
{
    scalars.emplace_back(name, render(value));
}

void
BenchReport::scalar(const std::string &name, int value)
{
    scalars.emplace_back(name, render(value));
}

void
BenchReport::gate(const std::string &name, bool pass,
                  const std::string &fail_message)
{
    scalars.emplace_back(name,
                         pass ? "\"pass\"" : "\"fail\"");
    if (!pass) {
        std::cerr << "FAIL: " << fail_message << "\n";
        rc = 1;
    }
}

int
BenchReport::finish()
{
    std::ofstream json(file);
    json << "{\n";
    bool need_comma = false;
    for (const auto &[name, rows] : arrays) {
        if (need_comma)
            json << ",\n";
        json << "  \"" << name << "\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            json << "    {" << rows[i].body << "}"
                 << (i + 1 < rows.size() ? ",\n" : "\n");
        }
        json << "  ]";
        need_comma = true;
    }
    for (const auto &[name, value] : scalars) {
        if (need_comma)
            json << ",\n";
        json << "  \"" << name << "\": " << value;
        need_comma = true;
    }
    json << "\n}\n";
    std::cout << "wrote " << file << "\n";
    return rc;
}

} // namespace gt::bench
