/**
 * @file
 * Multi-tenant profiling-service benchmark: aggregate dispatch
 * throughput and selection-refresh latency at 1, 4, and 16 tenants.
 *
 * Each scale point opens T tenants and submits the same three small
 * recorded applications to every one of them, then drains. The first
 * tenant's submissions replay for real; every later identical
 * recording is served from the content-addressed replay-artifact
 * cache, so on a single-core host aggregate throughput scales with
 * tenant count through sharing, not thread parallelism — the gate
 * enforces at least 3x dispatches/sec at 16 tenants vs 1.
 *
 * After draining, refreshAll() is timed twice: once doing the real
 * incremental re-cluster, once answered entirely from the memoized
 * selections. The benchmark also re-derives every checked session's
 * selections with a one-shot selectSubset() over a sealed database
 * and asserts bitwise identity — selected intervals, ratios, and
 * projected SPI — pinning the service's central contract in the same
 * binary that reports its speed.
 *
 *     cd /path/to/repo && build/bench/service_throughput
 *
 * Pass --smoke for the {1,4}-tenant CI variant (the scaling gate
 * needs the 16-tenant point and is skipped). Results land in
 * BENCH_service.json.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "serve/service.hh"

using namespace gt;

namespace
{

// The smallest applications of the suite: replay cost stays bounded
// at 16 tenants while the dispatch counts are still large enough to
// exercise every interval scheme.
const std::vector<std::string> benchApps = {
    "cb-gaussian-image",
    "cb-gaussian-buffer",
    "cb-histogram-image",
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
assertSameSelection(const core::SubsetSelection &got,
                    const core::SubsetSelection &want,
                    const std::string &where)
{
    GT_ASSERT(got.intervals.size() == want.intervals.size(), where,
              ": interval division diverges from one-shot oracle");
    for (size_t i = 0; i < got.intervals.size(); ++i) {
        const core::Interval &a = got.intervals[i];
        const core::Interval &b = want.intervals[i];
        GT_ASSERT(a.firstDispatch == b.firstDispatch &&
                      a.lastDispatch == b.lastDispatch &&
                      a.instrs == b.instrs && a.seconds == b.seconds,
                  where, ": interval ", i, " diverges");
    }
    GT_ASSERT(got.selected == want.selected, where,
              ": selected representatives diverge");
    GT_ASSERT(got.ratios.size() == want.ratios.size(), where,
              ": ratio count diverges");
    for (size_t i = 0; i < got.ratios.size(); ++i) {
        GT_ASSERT(got.ratios[i] == want.ratios[i], where,
                  ": ratio ", i, " diverges");
    }
    GT_ASSERT(got.selectedInstrs == want.selectedInstrs &&
                  got.totalInstrs == want.totalInstrs,
              where, ": instruction totals diverge");
}

/** One-shot oracle: seal the session's database and re-derive every
 * configured selection with batch selectSubset(); all artifacts must
 * match the incrementally refreshed state bit for bit. */
void
verifySession(serve::WorkloadSession &session,
              const serve::ServiceConfig &cfg,
              const std::string &where)
{
    core::TraceDatabase db = session.sealDatabase();
    for (size_t c = 0; c < cfg.selections.size(); ++c) {
        const serve::SelectionConfig &sc = cfg.selections[c];
        core::SubsetSelection got = session.selection(c);
        core::SubsetSelection want =
            core::selectSubset(db, sc.scheme, sc.feature,
                               cfg.cluster, cfg.targetInstrs);
        assertSameSelection(got, want, where);
        GT_ASSERT(core::projectedSpi(db, got) ==
                      core::projectedSpi(db, want),
                  where, ": projected SPI diverges");
    }
}

struct ScaleResult
{
    unsigned tenants = 0;
    uint64_t workloads = 0, dispatches = 0;
    uint64_t replays = 0, artifactHits = 0;
    double submitS = 0.0, refreshS = 0.0, refreshMemoS = 0.0;
    serve::ServiceStats stats;

    double throughput() const { return (double)dispatches / submitS; }
};

ScaleResult
runScale(unsigned tenant_count,
         const std::vector<cfl::Recording> &recordings)
{
    serve::ServiceConfig cfg;
    serve::ProfilingService service(cfg);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<serve::ProfilingService::TenantId> ids;
    for (unsigned t = 0; t < tenant_count; ++t) {
        ids.push_back(
            service.openTenant("tenant-" + std::to_string(t)));
        for (size_t w = 0; w < recordings.size(); ++w)
            service.submit(ids.back(), benchApps[w], recordings[w]);
    }
    service.drain();

    ScaleResult r;
    r.tenants = tenant_count;
    r.submitS = secondsSince(t0);
    r.workloads = tenant_count * recordings.size();
    for (unsigned t = 0; t < tenant_count; ++t) {
        for (size_t w = 0; w < recordings.size(); ++w) {
            r.dispatches +=
                service.session(ids[t], w).numDispatches();
        }
    }

    // First refresh does the incremental re-cluster; the second is
    // answered entirely from the memoized selections.
    t0 = std::chrono::steady_clock::now();
    service.refreshAll();
    r.refreshS = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    service.refreshAll();
    r.refreshMemoS = secondsSince(t0);

    // Oracle differential on the first and last tenant (every tenant
    // was fed the identical stream; the service tests cover the
    // exhaustive per-session sweep).
    for (unsigned t : {0u, tenant_count - 1}) {
        for (size_t w = 0; w < recordings.size(); ++w) {
            verifySession(service.session(ids[t], w), cfg,
                          benchApps[w] + "@tenant" +
                              std::to_string(t));
        }
        if (tenant_count == 1)
            break;
    }

    r.stats = service.stats();
    r.replays = r.stats.replays;
    r.artifactHits = r.stats.artifactHits;
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const bool smoke = bench::stripSmokeFlag(argc, argv);

    // Recordings come from the cached profiled apps, so the replayed
    // streams carry exactly the dispatch population the selections
    // describe.
    std::vector<cfl::Recording> recordings;
    for (const std::string &name : benchApps)
        recordings.push_back(bench::profiledApp(name).recording);

    std::vector<unsigned> scales{1, 4};
    if (!smoke)
        scales.push_back(16);

    std::vector<ScaleResult> results;
    for (unsigned tenants : scales) {
        results.push_back(runScale(tenants, recordings));
        const ScaleResult &r = results.back();
        std::cout << r.tenants << " tenant"
                  << (r.tenants == 1 ? "" : "s") << ": "
                  << r.dispatches << " dispatches in "
                  << fixed(r.submitS, 3) << " s  ("
                  << fixed(r.throughput() / 1000.0, 1)
                  << "k dispatches/s; " << r.replays
                  << " replays, " << r.artifactHits
                  << " artifact hits)\n"
                  << "  refresh " << fixed(r.refreshS * 1000.0, 1)
                  << " ms, memoized "
                  << fixed(r.refreshMemoS * 1000.0, 1)
                  << " ms; selections bitwise == one-shot oracle\n";
    }

    const double scaling =
        results.back().throughput() / results.front().throughput();
    std::cout << "\nthroughput scaling (" << results.back().tenants
              << " tenants vs 1): " << fixed(scaling, 1) << "x\n";

    bench::BenchReport report("BENCH_service.json");
    for (const ScaleResult &r : results) {
        report.addRow()
            .field("tenants", (uint64_t)r.tenants)
            .field("workloads", r.workloads)
            .field("dispatches", r.dispatches)
            .field("replays", r.replays)
            .field("artifact_hits", r.artifactHits)
            .field("submit_s", r.submitS)
            .field("dispatches_per_s", r.throughput())
            .field("refresh_s", r.refreshS)
            .field("refresh_memo_s", r.refreshMemoS);
    }
    const serve::ServiceStats &top = results.back().stats;
    report.scalar("plan_cache_builds", top.planCache.builds);
    report.scalar("plan_cache_hits", top.planCache.hits);
    report.scalar("sessions_reclustered", top.sessions.reclustered);
    report.scalar("sessions_memoized",
                  top.sessions.reusedSelections);
    report.scalar("throughput_scaling", scaling);
    report.gate("scaling_gate", smoke || scaling >= 3.0,
                "multi-tenant throughput scaling regressed below 3x: " +
                    std::to_string(scaling));
    return report.finish();
}
