/**
 * @file
 * Multi-tenant profiling-service benchmark: aggregate dispatch
 * throughput, warm-vs-cold admission latency, and bounded resident
 * memory at 1, 16, 64, and 256 tenants.
 *
 * Each scale point opens T tenants and submits the same three small
 * recorded applications to every one of them. Tenant 0 is the *cold*
 * set — its recordings replay for real on the shared pool. Every
 * later identical recording is *warm*: served from the
 * content-addressed replay-artifact cache and bulk-appended inline
 * in submit() (no replay scheduling, no pool hop), which is what the
 * warm-vs-cold per-workload speedup gate (>= 5x) measures.
 *
 * Every service runs under a fixed resident-byte budget: drained
 * sessions are evicted LRU-first to named columnar archives, so the
 * per-session state the service keeps hot is bounded by the budget,
 * not by tenant count. The resident gate fails the binary if the
 * summed session bytes exceed budget + slack at any scale — 256
 * tenants must not cost more resident session memory than 64.
 *
 * After draining, refreshAll() is timed twice: once doing the real
 * incremental re-cluster, once answered entirely from the memoized
 * selections. The benchmark re-derives the first (evicted at large
 * scales) and last tenants' selections with a one-shot
 * selectSubset() over a sealed database and asserts bitwise identity
 * — and a pool-width sweep at widths {1, 4} repeats the oracle check
 * for evicted-on-drain services plus a direct evict-mid-stream /
 * rehydrate session, pinning the service's central contract in the
 * same binary that reports its speed.
 *
 *     cd /path/to/repo && build/bench/service_throughput
 *
 * Pass --smoke for the {1,64}-tenant CI variant (the 256-tenant
 * point and the 16-tenant curve fill are skipped; every gate is
 * kept). Results land in BENCH_service.json.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "serve/service.hh"

using namespace gt;

namespace
{

// The smallest applications of the suite: replay cost stays bounded
// at 256 tenants while the dispatch counts are still large enough to
// exercise every interval scheme.
const std::vector<std::string> benchApps = {
    "cb-gaussian-image",
    "cb-gaussian-buffer",
    "cb-histogram-image",
};

/** Resident-byte budget every scale point runs under. Small enough
 * that the 64- and 256-tenant points must evict to stay inside it. */
constexpr uint64_t residentBudgetBytes = 4ull << 20;

/** Eviction residue + in-flight-feed slack the resident gate allows
 * on top of the configured budget. */
constexpr uint64_t residentSlackBytes = 2ull << 20;

std::string
benchArchiveDir(const std::string &tag)
{
    const char *tmp = std::getenv("TMPDIR");
    std::string base = tmp && *tmp ? tmp : "/tmp";
    return base + "/gt-serve-bench-" +
           std::to_string((long)::getpid()) + "-" + tag;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
assertSameSelection(const core::SubsetSelection &got,
                    const core::SubsetSelection &want,
                    const std::string &where)
{
    GT_ASSERT(got.intervals.size() == want.intervals.size(), where,
              ": interval division diverges from one-shot oracle");
    for (size_t i = 0; i < got.intervals.size(); ++i) {
        const core::Interval &a = got.intervals[i];
        const core::Interval &b = want.intervals[i];
        GT_ASSERT(a.firstDispatch == b.firstDispatch &&
                      a.lastDispatch == b.lastDispatch &&
                      a.instrs == b.instrs && a.seconds == b.seconds,
                  where, ": interval ", i, " diverges");
    }
    GT_ASSERT(got.selected == want.selected, where,
              ": selected representatives diverge");
    GT_ASSERT(got.ratios.size() == want.ratios.size(), where,
              ": ratio count diverges");
    for (size_t i = 0; i < got.ratios.size(); ++i) {
        GT_ASSERT(got.ratios[i] == want.ratios[i], where,
                  ": ratio ", i, " diverges");
    }
    GT_ASSERT(got.selectedInstrs == want.selectedInstrs &&
                  got.totalInstrs == want.totalInstrs,
              where, ": instruction totals diverge");
}

/** One-shot oracle: seal the session's database (read back from its
 * archive when the session is evicted) and re-derive every
 * configured selection with batch selectSubset(); all artifacts must
 * match the incrementally refreshed state bit for bit. */
void
verifySession(serve::WorkloadSession &session,
              const serve::ServiceConfig &cfg,
              const std::string &where)
{
    core::TraceDatabase db = session.sealDatabase();
    for (size_t c = 0; c < cfg.selections.size(); ++c) {
        const serve::SelectionConfig &sc = cfg.selections[c];
        core::SubsetSelection got = session.selection(c);
        core::SubsetSelection want =
            core::selectSubset(db, sc.scheme, sc.feature,
                               cfg.cluster, cfg.targetInstrs);
        assertSameSelection(got, want, where);
        GT_ASSERT(core::projectedSpi(db, got) ==
                      core::projectedSpi(db, want),
                  where, ": projected SPI diverges");
    }
}

struct ScaleResult
{
    unsigned tenants = 0;
    uint64_t workloads = 0, dispatches = 0;
    uint64_t replays = 0, artifactHits = 0;
    uint64_t evictions = 0;
    double submitS = 0.0, coldS = 0.0, warmS = 0.0;
    double refreshS = 0.0, refreshMemoS = 0.0;
    uint64_t residentSessionBytes = 0, memoBytes = 0;
    uint64_t evictedResidueBytes = 0;
    uint64_t footprintBytes = 0;
    serve::ServiceStats stats;

    double throughput() const { return (double)dispatches / submitS; }

    double coldPerWorkloadS() const
    {
        return coldS / (double)benchApps.size();
    }

    /** Average warm submit() latency (0 when only one tenant ran). */
    double
    warmPerWorkloadS() const
    {
        uint64_t warm = workloads - benchApps.size();
        return warm ? warmS / (double)warm : 0.0;
    }
};

ScaleResult
runScale(unsigned tenant_count,
         const std::vector<cfl::Recording> &recordings)
{
    serve::ServiceConfig cfg;
    cfg.maxResidentBytes = residentBudgetBytes;
    cfg.archiveDir =
        benchArchiveDir("t" + std::to_string(tenant_count));
    serve::ProfilingService service(cfg);

    // Cold set: tenant 0's recordings replay for real.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<serve::ProfilingService::TenantId> ids;
    ids.push_back(service.openTenant("tenant-0"));
    for (size_t w = 0; w < recordings.size(); ++w)
        service.submit(ids[0], benchApps[w], recordings[w]);
    service.drain();

    ScaleResult r;
    r.tenants = tenant_count;
    r.coldS = secondsSince(t0);

    // Warm set: every later tenant hits the replay-artifact cache
    // and bulk-appends inline in submit().
    auto warm0 = std::chrono::steady_clock::now();
    for (unsigned t = 1; t < tenant_count; ++t) {
        ids.push_back(
            service.openTenant("tenant-" + std::to_string(t)));
        for (size_t w = 0; w < recordings.size(); ++w)
            service.submit(ids.back(), benchApps[w], recordings[w]);
    }
    service.drain();
    r.warmS = secondsSince(warm0);
    r.submitS = secondsSince(t0);

    r.workloads = tenant_count * recordings.size();
    for (unsigned t = 0; t < tenant_count; ++t) {
        for (size_t w = 0; w < recordings.size(); ++w) {
            r.dispatches +=
                service.session(ids[t], w).numDispatches();
        }
    }

    // Resident memory after the drain: everything over budget has
    // been evicted to the archive, so session bytes are bounded by
    // the budget, not the tenant count.
    serve::ServiceFootprint fp = service.memoryFootprint();
    r.residentSessionBytes = fp.sessionBytes;
    r.memoBytes = fp.memoBytes;
    r.evictedResidueBytes = fp.evictedResidueBytes;
    r.footprintBytes = fp.totalBytes;

    // First refresh does the incremental re-cluster (evicted
    // sessions answer from the memo sealed at eviction); the second
    // is answered entirely from the memoized selections.
    t0 = std::chrono::steady_clock::now();
    service.refreshAll();
    r.refreshS = secondsSince(t0);
    t0 = std::chrono::steady_clock::now();
    service.refreshAll();
    r.refreshMemoS = secondsSince(t0);

    // Oracle differential on the first tenant (evicted to the
    // archive at the larger scales — LRU evicts the oldest first)
    // and the last (still resident); every tenant was fed the
    // identical stream, and the service tests cover the exhaustive
    // per-session sweep.
    for (unsigned t : {0u, tenant_count - 1}) {
        for (size_t w = 0; w < recordings.size(); ++w) {
            verifySession(service.session(ids[t], w), cfg,
                          benchApps[w] + "@tenant" +
                              std::to_string(t));
        }
        if (tenant_count == 1)
            break;
    }

    r.stats = service.stats();
    r.replays = r.stats.replays;
    r.artifactHits = r.stats.artifactHits;
    r.evictions = r.stats.sessions.evictions;
    return r;
}

/**
 * Selection determinism across pool widths, covering the evicted
 * and rehydrated lifecycles the scale runs only sample:
 *
 *  - an evict-on-drain service (every session answers from a memo
 *    sealed at eviction, databases reopen from the archive);
 *  - a direct session evicted mid-stream whose tail rows force a
 *    rehydrate before the final refresh.
 *
 * Every selection must equal the one-shot oracle and be bitwise
 * identical across widths.
 */
void
poolWidthSweep(const std::vector<cfl::Recording> &recordings)
{
    const unsigned widths[] = {1, 4};
    std::vector<std::vector<core::SubsetSelection>> service_sels;
    std::vector<std::vector<core::SubsetSelection>> rehydrate_sels;

    for (unsigned width : widths) {
        sched::ThreadPool pool(width);
        serve::ServiceConfig cfg;
        cfg.pool = &pool;
        cfg.evictOnDrain = true;
        cfg.archiveDir =
            benchArchiveDir("w" + std::to_string(width));

        {
            serve::ProfilingService service(cfg);
            auto tenant = service.openTenant("sweep");
            for (size_t w = 0; w < recordings.size(); ++w)
                service.submit(tenant, benchApps[w], recordings[w]);
            service.drain();
            service.refreshAll();
            GT_ASSERT(service.stats().sessions.evictions ==
                          recordings.size(),
                      "evict-on-drain sweep left sessions resident");

            std::vector<core::SubsetSelection> sels;
            for (size_t w = 0; w < recordings.size(); ++w) {
                serve::WorkloadSession &session =
                    service.session(tenant, w);
                verifySession(session, cfg,
                              benchApps[w] + "@width" +
                                  std::to_string(width));
                for (size_t c = 0; c < cfg.selections.size(); ++c)
                    sels.push_back(session.selection(c));
            }
            service_sels.push_back(std::move(sels));
        }

        // Evict mid-stream, then rehydrate through the tail rows.
        const core::ProfiledApp &app =
            bench::profiledApp(benchApps[0]);
        const uint64_t n = app.db.numDispatches();
        std::vector<gtpin::DispatchProfile> profiles;
        std::vector<cfl::KernelTiming> timings;
        std::vector<std::pair<uint64_t, uint64_t>> epochs;
        for (uint64_t d = 0; d < n; ++d) {
            profiles.push_back(app.db.profileAt(d));
            cfl::KernelTiming timing;
            timing.seq = d;
            timing.kernelName = profiles.back().kernelName;
            timing.seconds = app.db.seconds(d);
            timings.push_back(std::move(timing));
            epochs.push_back({d, app.db.syncEpoch(d)});
        }
        const size_t half = (size_t)(n / 2);
        auto slice = [](const auto &v, size_t from, size_t to) {
            return std::decay_t<decltype(v)>(v.begin() + (long)from,
                                             v.begin() + (long)to);
        };

        serve::WorkloadSession session(benchApps[0], cfg, pool);
        session.addDispatches(slice(profiles, 0, half),
                              slice(timings, 0, half),
                              slice(epochs, 0, half));
        session.evict(benchArchiveDir("rehydrate-w" +
                                      std::to_string(width)) +
                      ".gtar");
        GT_ASSERT(session.isEvicted(),
                  "mid-stream eviction did not stick");
        session.addDispatches(slice(profiles, half, (size_t)n),
                              slice(timings, half, (size_t)n),
                              slice(epochs, half, (size_t)n));
        GT_ASSERT(!session.isEvicted(),
                  "tail rows did not rehydrate the session");
        GT_ASSERT(session.stats().rehydrations == 1,
                  "expected exactly one rehydration");
        session.refresh();
        verifySession(session, cfg,
                      "rehydrate@width" + std::to_string(width));
        std::vector<core::SubsetSelection> sels;
        for (size_t c = 0; c < cfg.selections.size(); ++c)
            sels.push_back(session.selection(c));
        rehydrate_sels.push_back(std::move(sels));
    }

    for (auto *group : {&service_sels, &rehydrate_sels}) {
        for (size_t i = 1; i < group->size(); ++i) {
            GT_ASSERT((*group)[i].size() == (*group)[0].size(),
                      "pool-width sweep selection count diverges");
            for (size_t s = 0; s < (*group)[i].size(); ++s) {
                assertSameSelection((*group)[i][s], (*group)[0][s],
                                    "pool width " +
                                        std::to_string(widths[i]) +
                                        " vs 1");
            }
        }
    }
    std::cout << "pool-width sweep {1,4}: evicted + rehydrated "
                 "selections bitwise == one-shot oracle\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const bool smoke = bench::stripSmokeFlag(argc, argv);

    // Recordings come from the cached profiled apps, so the replayed
    // streams carry exactly the dispatch population the selections
    // describe.
    std::vector<cfl::Recording> recordings;
    for (const std::string &name : benchApps)
        recordings.push_back(bench::profiledApp(name).recording);

    // CI smoke keeps the endpoints that exercise eviction (64) and
    // the cold baseline (1); the full run fills in the curve.
    std::vector<unsigned> scales;
    if (smoke)
        scales = {1, 64};
    else
        scales = {1, 16, 64, 256};

    std::vector<ScaleResult> results;
    for (unsigned tenants : scales) {
        results.push_back(runScale(tenants, recordings));
        const ScaleResult &r = results.back();
        std::cout << r.tenants << " tenant"
                  << (r.tenants == 1 ? "" : "s") << ": "
                  << r.dispatches << " dispatches in "
                  << fixed(r.submitS, 3) << " s  ("
                  << fixed(r.throughput() / 1000.0, 1)
                  << "k dispatches/s; " << r.replays
                  << " replays, " << r.artifactHits
                  << " artifact hits, " << r.evictions
                  << " evictions)\n"
                  << "  resident sessions "
                  << humanBytes(r.residentSessionBytes)
                  << " (budget "
                  << humanBytes(residentBudgetBytes)
                  << ", memoized selections "
                  << humanBytes(r.memoBytes)
                  << "); warm submit "
                  << fixed(r.warmPerWorkloadS() * 1e3, 2)
                  << " ms vs cold "
                  << fixed(r.coldPerWorkloadS() * 1e3, 2)
                  << " ms; refresh "
                  << fixed(r.refreshS * 1000.0, 1)
                  << " ms, memoized "
                  << fixed(r.refreshMemoS * 1000.0, 1)
                  << " ms; selections bitwise == one-shot oracle\n";
    }

    poolWidthSweep(recordings);

    const double scaling =
        results.back().throughput() / results.front().throughput();
    std::cout << "throughput scaling (" << results.back().tenants
              << " tenants vs 1): " << fixed(scaling, 1) << "x\n";

    // Warm-vs-cold speedup: geometric mean over every multi-tenant
    // scale of (cold replay latency / warm cached-append latency)
    // per workload.
    bench::GeoMean warm_speedup;
    for (const ScaleResult &r : results) {
        if (r.tenants > 1 && r.warmPerWorkloadS() > 0.0) {
            warm_speedup.add(r.coldPerWorkloadS() /
                             r.warmPerWorkloadS());
        }
    }
    std::cout << "warm-vs-cold submission speedup: "
              << fixed(warm_speedup.value(), 1) << "x\n";

    // Resident sessions must stay inside the configured budget
    // (plus eviction residue slack) at every scale.
    bool resident_bounded = true;
    uint64_t worst_resident = 0;
    for (const ScaleResult &r : results) {
        worst_resident =
            std::max(worst_resident, r.residentSessionBytes);
        if (r.residentSessionBytes >
            residentBudgetBytes + residentSlackBytes)
            resident_bounded = false;
    }

    bench::BenchReport report("BENCH_service.json");
    for (const ScaleResult &r : results) {
        report.addRow()
            .field("tenants", (uint64_t)r.tenants)
            .field("workloads", r.workloads)
            .field("dispatches", r.dispatches)
            .field("replays", r.replays)
            .field("artifact_hits", r.artifactHits)
            .field("evictions", r.evictions)
            .field("submit_s", r.submitS)
            .field("dispatches_per_s", r.throughput())
            .field("cold_workload_s", r.coldPerWorkloadS())
            .field("warm_workload_s", r.warmPerWorkloadS())
            .field("resident_session_bytes", r.residentSessionBytes)
            .field("memo_bytes", r.memoBytes)
            .field("evicted_residue_bytes", r.evictedResidueBytes)
            .field("footprint_bytes", r.footprintBytes)
            .field("refresh_s", r.refreshS)
            .field("refresh_memo_s", r.refreshMemoS);
    }
    const serve::ServiceStats &top = results.back().stats;
    report.scalar("resident_budget_bytes", residentBudgetBytes);
    report.scalar("plan_cache_builds", top.planCache.builds);
    report.scalar("plan_cache_hits", top.planCache.hits);
    report.scalar("sessions_reclustered", top.sessions.reclustered);
    report.scalar("sessions_memoized",
                  top.sessions.reusedSelections);
    report.scalar("sessions_evicted", top.sessions.evictions);
    report.scalar("throughput_scaling", scaling);
    report.scalar("warm_speedup", warm_speedup.value());
    report.gate("scaling_gate", scaling >= 3.0,
                "multi-tenant throughput scaling regressed below 3x: " +
                    std::to_string(scaling));
    report.gate("warm_speedup_gate", warm_speedup.value() >= 5.0,
                "warm submission speedup below 5x: " +
                    std::to_string(warm_speedup.value()));
    report.gate("resident_gate", resident_bounded,
                "resident session bytes exceed the configured "
                "budget: " +
                    std::to_string(worst_resident) + " > " +
                    std::to_string(residentBudgetBytes +
                                   residentSlackBytes));
    report.gate("evictions_gate",
                results.back().evictions > 0,
                "the largest scale point never evicted — the "
                "resident gate is not being exercised");
    return report.finish();
}
