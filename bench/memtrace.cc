/**
 * @file
 * Memory-trace delivery benchmark: the per-access callback oracle vs.
 * the batched SoA pipeline (GT_MEMTRACE=callback|batch), measured on
 * cache-sim-enabled profiling — a GT-Pin stack with CacheSimTool
 * attached, dispatching memory-heavy kernel templates through the
 * driver exactly as production profiling does.
 *
 * The paired timings yield per-template speedups and a geometric-mean
 * speedup, written to BENCH_memtrace.json (and summarized on stdout)
 * so the README's perf numbers are reproducible with:
 *
 *     build/bench/memtrace
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "gtpin/cache_sim.hh"
#include "gtpin/gtpin.hh"
#include "ocl/runtime.hh"
#include "workloads/templates.hh"

using namespace gt;

namespace
{

/** Leading template parameter (trip count / size knob) per case. */
constexpr int64_t leadingParam = 8;

/** Work items per dispatch (256 hardware threads at SIMD16). */
constexpr uint64_t benchGlobalSize = 16 * 256;

/** Memory-heavy subset of the template library: cache simulation is
 * only enabled when global-memory address traces matter, so the
 * benchmark covers the templates whose dispatch cost is dominated by
 * traced (global) accesses, not compute (hash, julia) or local
 * memory (histogram, scan). */
const std::vector<std::string> benchTemplates = {
    "stream", "blur", "effect", "blend", "matmul",
    "reduce", "lut",  "fft",    "flow",
};

void
runTrace(benchmark::State &state, const std::string &tmpl,
         gtpin::GtPin::MemTraceMode mode)
{
    setLogQuiet(true);
    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);

    gtpin::CacheSimTool tool(4ull << 20, 16, 64);
    gtpin::GtPin pin;
    pin.setMemTraceMode(mode);
    pin.addTool(&tool);
    pin.attach(driver);

    ocl::ClRuntime rt(driver);
    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue q = rt.createCommandQueue(ctx);
    isa::KernelSource src;
    src.name = "bench_" + tmpl;
    src.templateName = tmpl;
    src.params = {leadingParam};
    ocl::Program prog = rt.createProgramWithSource(ctx, {src});
    rt.buildProgram(prog);
    ocl::Kernel k = rt.createKernel(prog, src.name);
    ocl::Mem buf = rt.createBuffer(ctx, 4 << 20);
    const isa::KernelBinary &bin = driver.binary(0);
    for (uint32_t a = 0; a < bin.numArgs; ++a)
        rt.setKernelArg(k, a, buf);

    for (auto _ : state) {
        rt.enqueueNDRangeKernel(q, k, benchGlobalSize);
        rt.finish(q);
        benchmark::DoNotOptimize(tool.cache().accesses());
    }
    state.counters["cache_accesses_per_s"] = benchmark::Counter(
        (double)tool.cache().accesses(), benchmark::Counter::kIsRate);
    pin.detach();
}

std::string
caseName(const std::string &tmpl, const char *mode)
{
    return "memtrace/" + tmpl + "/" + mode;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    const std::pair<const char *, gtpin::GtPin::MemTraceMode> modes[] =
        {
            {"callback", gtpin::GtPin::MemTraceMode::Callback},
            {"batch", gtpin::GtPin::MemTraceMode::Batch},
        };

    for (const std::string &tmpl : benchTemplates) {
        for (const auto &[mode_name, mode] : modes) {
            benchmark::RegisterBenchmark(
                caseName(tmpl, mode_name).c_str(),
                [tmpl, mode](benchmark::State &st) {
                    runTrace(st, tmpl, mode);
                })
                ->MinTime(0.1)
                ->Unit(benchmark::kMicrosecond);
        }
    }

    bench::CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    // Pair up the timings: speedup = callback time / batch time.
    bench::BenchReport report("BENCH_memtrace.json");
    bench::GeoMean geomean;
    for (const std::string &tmpl : benchTemplates) {
        auto cb = reporter.times.find(caseName(tmpl, "callback"));
        auto bt = reporter.times.find(caseName(tmpl, "batch"));
        if (cb == reporter.times.end() || bt == reporter.times.end())
            continue;
        double speedup = cb->second / bt->second;
        geomean.add(speedup);
        report.addRow()
            .field("template", tmpl)
            .field("callback_ns", cb->second)
            .field("batch_ns", bt->second)
            .field("speedup", speedup);
    }
    std::cout << "\n";
    if (geomean.count() > 0) {
        report.scalar("geomean_speedup", geomean.value());
        std::cout << "geomean speedup (batch vs callback delivery): "
                  << geomean.value() << "x\n";
    }
    return report.finish();
}
