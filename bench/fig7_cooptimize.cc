/**
 * @file
 * Reproduces Figure 7: co-optimization of simulation time and
 * error. For each error threshold (min-error, then 0.5% and 1-10%),
 * every application picks its smallest-selection configuration with
 * error below the threshold (falling back to min error); the curve
 * reports cross-application average error and simulation speedup.
 *
 * Paper: speedups increase monotonically as the threshold relaxes;
 * at the 10% threshold the average error is 3.0% with an average
 * 223x speedup; the min-error policy (leftmost point) gives 0.3%
 * error at 35x.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    std::vector<double> thresholds{0.0, 0.5};
    for (int t = 1; t <= 10; ++t)
        thresholds.push_back((double)t);

    TextTable table({"error threshold", "avg error", "avg speedup",
                     "harmonic speedup"});
    double prev_speedup = 0.0;
    bool monotone = true;

    for (double threshold : thresholds) {
        RunningStat err;
        std::vector<double> speedups;
        for (const std::string &name : bench::paperOrder()) {
            const core::Exploration &ex = bench::exploration(name);
            const core::ConfigResult &chosen = threshold == 0.0
                ? core::pickMinError(ex)
                : core::pickCoOptimized(ex, threshold);
            err.add(chosen.errorPct);
            speedups.push_back(chosen.selection.speedup());
        }
        double avg_speedup = mean(speedups);
        double inv = 0.0;
        for (double s : speedups)
            inv += 1.0 / s;
        double harmonic = (double)speedups.size() / inv;
        table.addRow({threshold == 0.0
                          ? std::string("min-error")
                          : pct(threshold / 100.0, 1),
                      pct(err.mean() / 100.0, 2),
                      fixed(avg_speedup, 0) + "x",
                      fixed(harmonic, 0) + "x"});
        monotone = monotone && avg_speedup >= prev_speedup - 1e-9;
        prev_speedup = avg_speedup;
    }

    table.print(std::cout,
                "Fig. 7: co-optimizing error and selection size");
    std::cout << "\nspeedups monotonically non-decreasing: "
              << (monotone ? "yes" : "NO") << "\n"
              << "paper: min-error point 0.3% / 35x; 10% threshold "
                 "3.0% avg error / 223x avg speedup\n";
    return 0;
}
