/**
 * @file
 * Reproduces Figure 6: per-application error-minimizing
 * configuration choice.
 *
 * Each application picks, from its own 30-configuration
 * exploration, the configuration with the smallest SPI error; the
 * figure plots error vs. simulation speedup. Paper results: 0.3%
 * average error, 35x average speedup (range 6x-6509x); only 5 of 25
 * applications choose kernel-based features; interval choices split
 * 3 single-kernel / 11 sync / 11 ~100M; memory-based features are
 * chosen by 20 of 25. As a cross-check, the selected intervals of
 * one sample application are run through the detailed cycle-level
 * simulator and the extrapolated SPI is compared against detailed
 * simulation of the full program.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "gpu/detailed_sim.hh"
#include "workloads/templates.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    TextTable table({"application", "intervals", "features",
                     "error", "speedup"});
    RunningStat err, speedup;
    int kernel_features = 0, memory_features = 0;
    int by_scheme[3] = {0, 0, 0};

    for (const std::string &name : bench::paperOrder()) {
        const core::ConfigResult &best =
            core::pickMinError(bench::exploration(name));
        const core::SubsetSelection &sel = best.selection;
        table.addRow({name, core::intervalSchemeName(sel.scheme),
                      core::featureKindName(sel.feature),
                      pct(best.errorPct / 100.0, 2),
                      fixed(sel.speedup(), 0) + "x"});
        err.add(best.errorPct);
        speedup.add(sel.speedup());
        if (!core::isBlockFeature(sel.feature))
            ++kernel_features;
        if (core::hasMemoryFeature(sel.feature))
            ++memory_features;
        ++by_scheme[(int)sel.scheme];
    }

    table.print(std::cout,
                "Fig. 6: per-application error-minimizing "
                "configuration");
    std::cout << "\naverage error " << pct(err.mean() / 100.0, 2)
              << " (worst " << pct(err.max() / 100.0, 2) << ")"
              << ", average speedup " << fixed(speedup.mean(), 0)
              << "x (range " << fixed(speedup.min(), 0) << "x-"
              << fixed(speedup.max(), 0) << "x)\n"
              << "kernel-based features chosen by "
              << kernel_features << "/25"
              << "; memory features by " << memory_features
              << "/25\n"
              << "interval choices: " << by_scheme[0] << " sync, "
              << by_scheme[1] << " approx-n, " << by_scheme[2]
              << " single-kernel\n"
              << "paper: 0.3% avg error (worst 2.1%), 35x avg "
                 "speedup (6x-6509x); 5/25 kernel\n"
                 "features; 20/25 memory features; 11 sync / 11 "
                 "~100M / 3 single-kernel\n\n";

    // Detailed-simulator cross-check on one application: simulate
    // only the selected intervals, extrapolate, and compare against
    // detailed simulation of every dispatch.
    const std::string sample = "cb-gaussian-image";
    std::cout << "Detailed-simulation cross-check (" << sample
              << ")...\n";
    const core::ProfiledApp &app = bench::profiledApp(sample);
    const core::ConfigResult &best =
        core::pickMinError(bench::exploration(sample));
    const core::SubsetSelection &sel = best.selection;

    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);
    ocl::ClRuntime rt(driver);
    cfl::replay(app.recording, rt);

    gpu::DetailedSimulator sim(driver.config());
    auto simulate_range = [&](uint64_t first, uint64_t last,
                              uint64_t &instrs, double &seconds,
                              uint64_t &walked) {
        instrs = 0;
        seconds = 0.0;
        for (uint64_t d = first; d <= last; ++d) {
            const auto &rec = app.db.dispatches()[d].profile;
            gpu::Dispatch dispatch;
            dispatch.binary = &driver.binary(rec.kernelId);
            dispatch.globalSize = rec.globalWorkSize;
            dispatch.simdWidth = 16;
            dispatch.args = rec.args;
            gpu::DetailedResult r =
                sim.simulate(driver.executor(), dispatch);
            instrs += rec.instrs;
            seconds += r.seconds;
            walked += r.simulatedInstrs;
        }
    };

    // Full-program detailed simulation (feasible only because this
    // is one of the smallest applications).
    uint64_t full_instrs = 0, full_walked = 0;
    double full_seconds = 0.0;
    simulate_range(0, app.db.numDispatches() - 1, full_instrs,
                   full_seconds, full_walked);
    double full_spi = full_seconds / (double)full_instrs;

    // Selection-only detailed simulation + extrapolation.
    uint64_t sel_walked = 0;
    double projected = 0.0;
    for (size_t c = 0; c < sel.selected.size(); ++c) {
        const core::Interval &iv = sel.intervals[sel.selected[c]];
        uint64_t instrs = 0;
        double seconds = 0.0;
        simulate_range(iv.firstDispatch, iv.lastDispatch, instrs,
                       seconds, sel_walked);
        projected += sel.ratios[c] * (seconds / (double)instrs);
    }

    double dserr =
        std::abs(projected - full_spi) / full_spi * 100.0;
    std::cout << "  full detailed sim: SPI=" << full_spi
              << " (walked " << humanCount((double)full_walked)
              << " instrs)\n"
              << "  subset detailed sim: projected SPI="
              << projected << " (walked "
              << humanCount((double)sel_walked) << " instrs)\n"
              << "  extrapolation error " << pct(dserr / 100.0, 2)
              << ", detailed-simulation work reduced "
              << fixed((double)full_walked /
                           (double)std::max<uint64_t>(1, sel_walked),
                       0)
              << "x\n";
    return 0;
}
