/**
 * @file
 * Reproduces Figure 6: per-application error-minimizing
 * configuration choice.
 *
 * Each application picks, from its own 30-configuration
 * exploration, the configuration with the smallest SPI error; the
 * figure plots error vs. simulation speedup. Paper results: 0.3%
 * average error, 35x average speedup (range 6x-6509x); only 5 of 25
 * applications choose kernel-based features; interval choices split
 * 3 single-kernel / 11 sync / 11 ~100M; memory-based features are
 * chosen by 20 of 25. As a cross-check, the selected intervals of
 * one sample application are run through the detailed cycle-level
 * simulator and the extrapolated SPI is compared against detailed
 * simulation of the full program.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/detailed_validator.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    TextTable table({"application", "intervals", "features",
                     "error", "speedup"});
    RunningStat err, speedup;
    int kernel_features = 0, memory_features = 0;
    int by_scheme[3] = {0, 0, 0};

    for (const std::string &name : bench::paperOrder()) {
        const core::ConfigResult &best =
            core::pickMinError(bench::exploration(name));
        const core::SubsetSelection &sel = best.selection;
        table.addRow({name, core::intervalSchemeName(sel.scheme),
                      core::featureKindName(sel.feature),
                      pct(best.errorPct / 100.0, 2),
                      fixed(sel.speedup(), 0) + "x"});
        err.add(best.errorPct);
        speedup.add(sel.speedup());
        if (!core::isBlockFeature(sel.feature))
            ++kernel_features;
        if (core::hasMemoryFeature(sel.feature))
            ++memory_features;
        ++by_scheme[(int)sel.scheme];
    }

    table.print(std::cout,
                "Fig. 6: per-application error-minimizing "
                "configuration");
    std::cout << "\naverage error " << pct(err.mean() / 100.0, 2)
              << " (worst " << pct(err.max() / 100.0, 2) << ")"
              << ", average speedup " << fixed(speedup.mean(), 0)
              << "x (range " << fixed(speedup.min(), 0) << "x-"
              << fixed(speedup.max(), 0) << "x)\n"
              << "kernel-based features chosen by "
              << kernel_features << "/25"
              << "; memory features by " << memory_features
              << "/25\n"
              << "interval choices: " << by_scheme[0] << " sync, "
              << by_scheme[1] << " approx-n, " << by_scheme[2]
              << " single-kernel\n"
              << "paper: 0.3% avg error (worst 2.1%), 35x avg "
                 "speedup (6x-6509x); 5/25 kernel\n"
                 "features; 20/25 memory features; 11 sync / 11 "
                 "~100M / 3 single-kernel\n\n";

    // Detailed-simulator cross-check on one application: simulate
    // only the selected intervals, extrapolate, and compare against
    // detailed simulation of every dispatch. The validator's
    // checkpoint store runs the functional pre-pass once per
    // distinct dispatch (instead of once per simulate() call) and
    // its machine layer fans replay cells out per GT_DETAILED.
    const std::string sample = "cb-gaussian-image";
    std::cout << "Detailed-simulation cross-check (" << sample
              << ")...\n";
    const core::ProfiledApp &app = bench::profiledApp(sample);
    const core::SubsetSelection &sel =
        core::pickMinError(bench::exploration(sample)).selection;

    // Full-program detailed simulation is feasible only because this
    // is one of the smallest applications.
    core::DetailedValidator validator(app);
    core::DetailedValidator::Report rep = validator.validate(sel);

    std::cout << "  full detailed sim: SPI=" << rep.fullSpi
              << " (walked " << humanCount((double)rep.fullWalked)
              << " instrs)\n"
              << "  subset detailed sim: projected SPI="
              << rep.projectedSpi << " (walked "
              << humanCount((double)rep.subsetWalked) << " instrs)\n"
              << "  extrapolation error "
              << pct(rep.errorPct / 100.0, 2)
              << ", detailed-simulation work reduced "
              << fixed(rep.workReduction(), 0) << "x ("
              << validator.checkpointBuilds()
              << " functional pre-passes for "
              << app.db.numDispatches() << " dispatches)\n";
    return 0;
}
