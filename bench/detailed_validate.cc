/**
 * @file
 * Detailed-validation stack benchmark: the legacy per-call path vs.
 * the checkpointed stack, serial and parallel.
 *
 * For each (small) application, all 30 configurations of its
 * exploration are detail-validated — every selection's intervals are
 * simulated cycle-by-cycle, extrapolated, and compared against
 * detailed simulation of the whole program — three ways:
 *
 *  - **legacy**: the pre-refactor shape. One whole-program walk plus
 *    one subset walk per selection, each simulate() call re-running
 *    the functional pre-pass (block trace + Fast-mode profile)
 *    through the executor;
 *  - **serial**: core::DetailedValidator with the serial machine
 *    layer — one checkpoint per distinct dispatch, one replay cell
 *    per distinct dispatch, every selection served from the caches;
 *  - **parallel**: the same validator with GT_DETAILED=parallel
 *    semantics, replay cells fanned across the thread pool.
 *
 * All three must agree bit for bit (the parallel backend is
 * additionally checked at 1, 4, and hardware-width pools), and the
 * paired wall clocks land in BENCH_detailed.json:
 *
 *     cd /path/to/repo && build/bench/detailed_validate
 *
 * Pass --smoke for the single-application CI variant.
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/detailed_validator.hh"

using namespace gt;
using Backend = core::DetailedValidator::Backend;
using Report = core::DetailedValidator::Report;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** The pre-refactor stack: a fresh functional pre-pass inside every
 * simulate() call, no checkpoint or cell reuse anywhere. */
struct LegacyStack
{
    explicit LegacyStack(const core::ProfiledApp &app_) : app(app_)
    {
        gpu::TrialConfig trial;
        trial.noiseSigma = 0.0;
        driver = std::make_unique<ocl::GpuDriver>(
            gpu::DeviceConfig::hd4000(), jit, trial);
        runtime = std::make_unique<ocl::ClRuntime>(*driver);
        cfl::replay(app.recording, *runtime);
        sim = std::make_unique<gpu::DetailedSimulator>(
            driver->config());
    }

    void
    walkRange(uint64_t first, uint64_t last, uint64_t &instrs,
              double &seconds, uint64_t &walked)
    {
        for (uint64_t d = first; d <= last; ++d) {
            const auto &rec = app.db.profileAt(d);
            gpu::Dispatch dispatch;
            dispatch.binary = &driver->binary(rec.kernelId);
            dispatch.globalSize = rec.globalWorkSize;
            dispatch.simdWidth = 16;
            dispatch.args = rec.args;
            gpu::DetailedResult r =
                sim->simulate(driver->executor(), dispatch);
            instrs += rec.instrs;
            seconds += r.seconds;
            walked += r.simulatedInstrs;
        }
    }

    /** Whole-program SPI, paid once and reused by every selection
     * (the legacy benches did the same). */
    void
    walkFull()
    {
        walkRange(0, app.db.numDispatches() - 1, fullInstrs,
                  fullSeconds, fullWalked);
    }

    Report
    validate(const core::SubsetSelection &sel)
    {
        Report r;
        r.fullSpi = fullSeconds / (double)fullInstrs;
        r.fullWalked = fullWalked;
        for (size_t c = 0; c < sel.selected.size(); ++c) {
            const core::Interval &iv =
                sel.intervals[sel.selected[c]];
            uint64_t instrs = 0;
            double seconds = 0.0;
            walkRange(iv.firstDispatch, iv.lastDispatch, instrs,
                      seconds, r.subsetWalked);
            r.projectedSpi +=
                sel.ratios[c] * (seconds / (double)instrs);
        }
        r.errorPct =
            std::abs(r.projectedSpi - r.fullSpi) / r.fullSpi * 100.0;
        return r;
    }

    const core::ProfiledApp &app;
    workloads::TemplateJit jit;
    std::unique_ptr<ocl::GpuDriver> driver;
    std::unique_ptr<ocl::ClRuntime> runtime;
    std::unique_ptr<gpu::DetailedSimulator> sim;
    uint64_t fullInstrs = 0, fullWalked = 0;
    double fullSeconds = 0.0;
};

bool
sameReport(const Report &a, const Report &b)
{
    return a.fullSpi == b.fullSpi &&
           a.projectedSpi == b.projectedSpi &&
           a.errorPct == b.errorPct && a.fullWalked == b.fullWalked &&
           a.subsetWalked == b.subsetWalked;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    const bool smoke = bench::stripSmokeFlag(argc, argv);

    // Whole-program detailed simulation bounds the choice to the
    // smallest applications of the suite.
    std::vector<std::string> names{"cb-gaussian-image"};
    if (!smoke) {
        names.push_back("cb-gaussian-buffer");
        names.push_back("cb-histogram-image");
    }

    struct Row
    {
        std::string app;
        uint64_t dispatches = 0, selections = 0;
        double legacyS = 0.0, serialS = 0.0, parallelS = 0.0;
    };
    std::vector<Row> rows;

    for (const std::string &name : names) {
        const core::ProfiledApp &app = bench::profiledApp(name);
        const core::Exploration &ex = bench::exploration(name);

        Row row;
        row.app = name;
        row.dispatches = app.db.numDispatches();
        row.selections = ex.results.size();

        // Legacy: whole-program walk once, then a per-call subset
        // walk per selection — every walk re-runs the functional
        // pre-pass for each dispatch it touches.
        auto t0 = std::chrono::steady_clock::now();
        LegacyStack legacy(app);
        legacy.walkFull();
        std::vector<Report> legacy_reps;
        for (const core::ConfigResult &cr : ex.results)
            legacy_reps.push_back(legacy.validate(cr.selection));
        row.legacyS = secondsSince(t0);

        // Checkpointed stack, serial oracle.
        t0 = std::chrono::steady_clock::now();
        core::DetailedValidator serial_v(app, Backend::Serial);
        std::vector<Report> serial_reps;
        for (const core::ConfigResult &cr : ex.results)
            serial_reps.push_back(serial_v.validate(cr.selection));
        row.serialS = secondsSince(t0);

        // Checkpointed stack, parallel machine layer.
        t0 = std::chrono::steady_clock::now();
        core::DetailedValidator parallel_v(app, Backend::Parallel);
        std::vector<Report> parallel_reps;
        for (const core::ConfigResult &cr : ex.results)
            parallel_reps.push_back(parallel_v.validate(cr.selection));
        row.parallelS = secondsSince(t0);

        for (size_t i = 0; i < serial_reps.size(); ++i) {
            GT_ASSERT(sameReport(legacy_reps[i], serial_reps[i]),
                      name, ": legacy/serial divergence at config ",
                      i);
            GT_ASSERT(sameReport(serial_reps[i], parallel_reps[i]),
                      name,
                      ": serial/parallel divergence at config ", i);
        }

        // The parallel backend must be thread-count-invariant:
        // re-validate one selection at 1, 4, and hardware width.
        const core::SubsetSelection &probe =
            core::pickMinError(ex).selection;
        Report want = serial_v.validate(probe);
        sched::ThreadPool pool1(1), pool4(4);
        sched::ThreadPool *pools[] = {&pool1, &pool4,
                                      &sched::ThreadPool::global()};
        for (sched::ThreadPool *pool : pools) {
            core::DetailedValidator v(app, Backend::Parallel, pool);
            GT_ASSERT(sameReport(v.validate(probe), want), name,
                      ": parallel result varies with pool width ",
                      pool->threadCount());
        }

        rows.push_back(row);
        std::cout << name << ": " << row.selections
                  << " selections over " << row.dispatches
                  << " dispatches\n"
                  << "  legacy    " << fixed(row.legacyS, 3)
                  << " s\n"
                  << "  serial    " << fixed(row.serialS, 3)
                  << " s  (" << fixed(row.legacyS / row.serialS, 1)
                  << "x, checkpointed)\n"
                  << "  parallel  " << fixed(row.parallelS, 3)
                  << " s  ("
                  << fixed(row.legacyS / row.parallelS, 1)
                  << "x, bit-identical at 1/4/hw threads)\n";
    }

    bench::GeoMean geomean;
    for (const Row &r : rows)
        geomean.add(r.legacyS / r.parallelS);
    std::cout << "\ngeomean speedup (checkpointed parallel vs "
                 "legacy): "
              << fixed(geomean.value(), 1) << "x\n";

    bench::BenchReport report("BENCH_detailed.json");
    for (const Row &r : rows) {
        report.addRow()
            .field("app", r.app)
            .field("selections", r.selections)
            .field("dispatches", r.dispatches)
            .field("legacy_s", r.legacyS)
            .field("serial_s", r.serialS)
            .field("parallel_s", r.parallelS)
            .field("speedup", r.legacyS / r.parallelS);
    }
    report.scalar("geomean_speedup", geomean.value());
    report.gate("speedup_gate", geomean.value() >= 3.0,
                "detailed validation speedup regressed below 3x: " +
                    std::to_string(geomean.value()));
    return report.finish();
}
