/**
 * @file
 * Reproduces Table III: the program feature space — the ten feature
 * vector types, each key's composition, and (beyond the paper's
 * static table) the measured dimensionality each type produces on a
 * sample application, which is what makes the refinement hierarchy
 * concrete.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    struct Entry
    {
        core::FeatureKind kind;
        const char *key;
    };
    const Entry entries[] = {
        {core::FeatureKind::KN, "Kernel"},
        {core::FeatureKind::KN_ARGS, "Kernel, Argument Values"},
        {core::FeatureKind::KN_GWS, "Kernel, Global Work Size"},
        {core::FeatureKind::KN_ARGS_GWS,
         "Kernel, Argument Values, Global Work Size"},
        {core::FeatureKind::KN_RW,
         "Kernel, # Bytes Read, # Bytes Written"},
        {core::FeatureKind::BB, "Basic Block"},
        {core::FeatureKind::BB_R, "Basic Block, # Bytes Read"},
        {core::FeatureKind::BB_W, "Basic Block, # Bytes Written"},
        {core::FeatureKind::BB_R_W,
         "Basic Block, # Bytes Read, # Bytes Written"},
        {core::FeatureKind::BB_RpW,
         "Basic Block, # Bytes Read + # Bytes Written"},
    };

    const std::string sample = "cb-physics-ocean-surf";
    const core::ProfiledApp &app = bench::profiledApp(sample);
    core::Interval whole;
    whole.firstDispatch = 0;
    whole.lastDispatch = app.db.numDispatches() - 1;

    TextTable table({"feature key", "identifier",
                     "dims (" + sample + ")"});
    for (const Entry &e : entries) {
        core::FeatureVector vec =
            core::extractFeatures(app.db, whole, e.kind);
        table.addRow({e.key, core::featureKindName(e.kind),
                      std::to_string(vec.dims())});
    }
    table.print(std::cout,
                "Table III: the program feature space (values "
                "count dynamic occurrences,\nweighted by "
                "instruction count)");
    return 0;
}
