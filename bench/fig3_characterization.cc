/**
 * @file
 * Reproduces Figure 3: the benchmark characterization.
 *
 *  (a) OpenCL API call breakdown (% kernel / synchronization /
 *      other) per application, measured on the host by the
 *      CoFluent-style tracer;
 *  (b) static GPU program structures (unique kernels, unique basic
 *      blocks), measured by GT-Pin;
 *  (c) dynamic GPU work (kernel invocations, basic-block executions,
 *      dynamic instructions), measured by GT-Pin.
 *
 * Paper reference points: total API calls range from ~700 to over
 * 160K; kernel calls average ~15% (bitcoin 4.5%, part-sim-32K
 * 76.5%); sync calls average 6.8% (juliaset 25.7%); 1-50 unique
 * kernels (mean 10.2); 7-11,500 unique blocks (mean 1139);
 * invocations 55-18K+ (mean 4764); instructions 3.7 B - 2.9 T.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace gt;

int
main()
{
    setLogQuiet(true);

    TextTable a({"application", "api calls", "kernel", "sync",
                 "other"});
    TextTable b({"application", "unique kernels", "unique blocks"});
    TextTable c({"application", "invocations", "block execs",
                 "instructions"});

    RunningStat calls, frac_kernel, frac_sync;
    RunningStat kernels, blocks;
    RunningStat invocations, block_execs, instrs;

    for (const std::string &name : bench::paperOrder()) {
        const core::AppCharacterization &st =
            bench::profiledApp(name).stats;

        a.addRow({name, std::to_string(st.totalApiCalls),
                  pct(st.fracKernel), pct(st.fracSync),
                  pct(st.fracOther)});
        b.addRow({name, std::to_string(st.uniqueKernels),
                  std::to_string(st.uniqueBlocks)});
        c.addRow({name, std::to_string(st.kernelInvocations),
                  humanCount((double)st.blockExecs),
                  humanCount((double)st.dynInstrs)});

        calls.add((double)st.totalApiCalls);
        frac_kernel.add(st.fracKernel);
        frac_sync.add(st.fracSync);
        kernels.add((double)st.uniqueKernels);
        blocks.add((double)st.uniqueBlocks);
        invocations.add((double)st.kernelInvocations);
        block_execs.add((double)st.blockExecs);
        instrs.add((double)st.dynInstrs);
    }

    a.addSeparator();
    a.addRow({"AVERAGE", fixed(calls.mean(), 0),
              pct(frac_kernel.mean()), pct(frac_sync.mean()),
              pct(1.0 - frac_kernel.mean() - frac_sync.mean())});
    b.addSeparator();
    b.addRow({"AVERAGE", fixed(kernels.mean(), 1),
              fixed(blocks.mean(), 0)});
    c.addSeparator();
    c.addRow({"AVERAGE", fixed(invocations.mean(), 0),
              humanCount(block_execs.mean()),
              humanCount(instrs.mean())});

    a.print(std::cout, "Fig. 3a: OpenCL API call breakdown");
    std::cout << "paper: calls 703..160K+; kernel ~15% avg "
                 "(bitcoin 4.5%, part-sim-32K 76.5%);\n"
                 "sync 6.8% avg (juliaset 25.7%)\n\n";
    b.print(std::cout, "Fig. 3b: GPU program structures");
    std::cout << "paper: 1-50 unique kernels (mean 10.2); "
                 "7-11,500 unique blocks (mean 1139)\n\n";
    c.print(std::cout, "Fig. 3c: dynamic GPU work");
    std::cout << "paper: invocations 55-18K+ (mean 4764); block "
                 "execs 44M-180B (mean 13B);\n"
                 "instructions 3.7B-2.9T (mean 227B)\n";
    return 0;
}
